//! Two-Level (TL) warp scheduling — Narasiman et al., MICRO-2011, as
//! implemented by GPGPU-Sim's `two_level_active` scheduler; the paper's
//! second baseline (PRO gains 1.13x geomean over it).
//!
//! Warps are split into a bounded **active set** and a **pending queue**.
//! Only active warps are considered for issue, round-robin. When an active
//! warp blocks on a long-latency operation (an outstanding global load), it
//! is demoted to the pending queue and the oldest pending warp that is not
//! itself blocked is promoted. The staggering of group execution makes
//! groups reach long-latency instructions at different times — the effect
//! PRO generalizes with per-TB/per-warp progress priorities.

use crate::codec::{self, Snapshot};
use crate::dirty::DirtyMask;
use crate::{IssueInfo, SchedView, WarpScheduler, WarpSlot};
use std::collections::VecDeque;

#[derive(Debug)]
struct UnitState {
    active: VecDeque<WarpSlot>,
    pending: VecDeque<WarpSlot>,
    last_issued: Option<WarpSlot>,
}

/// Two-level active/pending policy.
#[derive(Debug)]
pub struct TwoLevel {
    units: Vec<UnitState>,
    /// Maximum active-set size (GPGPU-Sim default 8).
    active_size: usize,
    /// TL's `order()` mutates its queues (rebalance), so a unit may only
    /// report clean when that rebalance is provably a fixpoint: no active
    /// warp blocked and no free active slot a pending warp could take.
    /// Blocked-flag changes are covered by `order_reads_longlat` — the
    /// engine refuses to reuse when the unit's blocked set moved.
    dirty: DirtyMask,
}

impl TwoLevel {
    /// `units` scheduler units; `active_size` warps may be active per unit.
    pub fn new(units: u32, active_size: usize) -> Self {
        TwoLevel {
            units: (0..units)
                .map(|_| UnitState {
                    active: VecDeque::new(),
                    pending: VecDeque::new(),
                    last_issued: None,
                })
                .collect(),
            active_size,
            dirty: DirtyMask::all(),
        }
    }

    /// Active set of a unit (test observability).
    pub fn active_set(&self, unit: u32) -> Vec<WarpSlot> {
        self.units[unit as usize].active.iter().copied().collect()
    }

    /// Reconcile bookkeeping with the candidate set: drop vanished warps,
    /// adopt new ones into pending, demote blocked active warps, promote
    /// ready pending warps.
    fn rebalance(&mut self, unit: u32, view: &SchedView, candidates: &[WarpSlot]) {
        let u = &mut self.units[unit as usize];
        let is_candidate = |w: WarpSlot| candidates.contains(&w);
        u.active.retain(|&w| is_candidate(w));
        u.pending.retain(|&w| is_candidate(w));
        for &w in candidates {
            if !u.active.contains(&w) && !u.pending.contains(&w) {
                u.pending.push_back(w);
            }
        }
        // Demote active warps blocked on long-latency loads.
        let mut i = 0;
        while i < u.active.len() {
            let w = u.active[i];
            if view.warps[w].blocked_on_longlat {
                u.active.remove(i);
                u.pending.push_back(w);
            } else {
                i += 1;
            }
        }
        // Promote unblocked pending warps FIFO until the active set is full.
        let mut scanned = 0;
        let pending_len = u.pending.len();
        while u.active.len() < self.active_size && scanned < pending_len {
            scanned += 1;
            let w = u.pending.pop_front().expect("non-empty");
            if view.warps[w].blocked_on_longlat {
                u.pending.push_back(w);
            } else {
                u.active.push_back(w);
            }
        }
        // If everything is blocked, fill with blocked warps anyway so the
        // unit still reports a valid (if unissuable) order.
        while u.active.len() < self.active_size {
            match u.pending.pop_front() {
                Some(w) => u.active.push_back(w),
                None => break,
            }
        }
    }
}

impl WarpScheduler for TwoLevel {
    fn name(&self) -> &'static str {
        "TL"
    }

    fn order(
        &mut self,
        unit: u32,
        view: &SchedView,
        candidates: &[WarpSlot],
        out: &mut Vec<WarpSlot>,
    ) {
        self.rebalance(unit, view, candidates);
        let u = &self.units[unit as usize];
        // Clean only at a rebalance fixpoint: with unchanged candidates and
        // blocked flags, every loop in `rebalance` would be a no-op, so the
        // queues — and therefore the emitted order — cannot drift. The
        // degenerate everything-blocked case (actives filled from the
        // "blocked anyway" tail) rotates the queues each call and must
        // stay dirty.
        let stable = u.active.iter().all(|&w| !view.warps[w].blocked_on_longlat)
            && (u.active.len() == self.active_size || u.pending.is_empty());
        if stable {
            self.dirty.clear(unit);
        } else {
            self.dirty.mark(unit);
        }
        out.clear();
        // Round robin within the active set, starting after last issued.
        let n = u.active.len();
        let start = match u.last_issued {
            Some(last) => u
                .active
                .iter()
                .position(|&w| w == last)
                .map(|p| (p + 1) % n.max(1))
                .unwrap_or(0),
            None => 0,
        };
        for i in 0..n {
            out.push(u.active[(start + i) % n]);
        }
        // Pending warps trail, FIFO (they can still issue if all actives
        // cannot — "loose" fallback, matching GPGPU-Sim behaviour where the
        // unit would otherwise idle).
        out.extend(u.pending.iter().copied());
    }

    fn order_dirty(&mut self, unit: u32) -> bool {
        self.dirty.is_dirty(unit)
    }

    fn order_reads_longlat(&self) -> bool {
        true
    }

    fn on_issue(&mut self, unit: u32, slot: WarpSlot, info: IssueInfo, _view: &SchedView) {
        let u = &mut self.units[unit as usize];
        self.dirty.mark(unit);
        u.last_issued = Some(slot);
        if info.is_global_load {
            // The warp will block shortly; demote it eagerly so the unit
            // rotates to another group member next cycle.
            if let Some(pos) = u.active.iter().position(|&w| w == slot) {
                u.active.remove(pos);
                u.pending.push_back(slot);
            }
        }
    }

    fn on_warp_finish(&mut self, slot: WarpSlot, _tb: usize, _view: &SchedView) {
        self.dirty.mark_all();
        for u in &mut self.units {
            u.active.retain(|&w| w != slot);
            u.pending.retain(|&w| w != slot);
            if u.last_issued == Some(slot) {
                u.last_issued = None;
            }
        }
    }

    fn save_state(&self, w: &mut codec::Writer) {
        w.put_u64(self.units.len() as u64);
        for u in &self.units {
            u.active.save(w);
            u.pending.save(w);
            u.last_issued.save(w);
        }
        self.dirty.save(w);
    }

    fn load_state(&mut self, r: &mut codec::Reader<'_>) -> Result<(), codec::CodecError> {
        let n = r.get_usize()?;
        if n != self.units.len() {
            return Err(codec::CodecError::BadValue("TL unit count"));
        }
        for u in &mut self.units {
            u.active = Snapshot::load(r)?;
            u.pending = Snapshot::load(r)?;
            u.last_issued = Snapshot::load(r)?;
        }
        self.dirty = Snapshot::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ViewFixture;

    fn load_info() -> IssueInfo {
        IssueInfo {
            active_threads: 32,
            is_global_load: true,
        }
    }

    #[test]
    fn active_set_is_bounded() {
        let f = ViewFixture::grid(4, 4); // 16 warps
        let mut s = TwoLevel::new(1, 8);
        let mut out = Vec::new();
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        assert_eq!(s.active_set(0).len(), 8);
        assert_eq!(out.len(), 16, "pending warps trail the order");
        assert_eq!(&out[..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn global_load_issue_demotes_warp() {
        let f = ViewFixture::grid(4, 4);
        let mut s = TwoLevel::new(1, 8);
        let mut out = Vec::new();
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        s.on_issue(0, 0, load_info(), &f.view());
        assert!(!s.active_set(0).contains(&0));
        // Next order() promotes warp 8 to fill the hole.
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        assert!(s.active_set(0).contains(&8));
    }

    #[test]
    fn blocked_warps_are_demoted_on_rebalance() {
        let mut f = ViewFixture::grid(2, 8); // 16 warps
        let mut s = TwoLevel::new(1, 4);
        let mut out = Vec::new();
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        assert_eq!(s.active_set(0), vec![0, 1, 2, 3]);
        f.warps[1].blocked_on_longlat = true;
        f.warps[2].blocked_on_longlat = true;
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        let active = s.active_set(0);
        assert!(!active.contains(&1));
        assert!(!active.contains(&2));
        assert_eq!(active.len(), 4, "holes refilled from pending");
    }

    #[test]
    fn round_robin_within_active_set() {
        let f = ViewFixture::grid(1, 4);
        let mut s = TwoLevel::new(1, 4);
        let mut out = Vec::new();
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        s.on_issue(
            0,
            1,
            IssueInfo {
                active_threads: 32,
                is_global_load: false,
            },
            &f.view(),
        );
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        assert_eq!(out, vec![2, 3, 0, 1]);
    }

    #[test]
    fn finished_warps_leave_both_queues() {
        let f = ViewFixture::grid(1, 4);
        let mut s = TwoLevel::new(1, 2);
        let mut out = Vec::new();
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        s.on_warp_finish(0, 0, &f.view());
        s.order(0, &f.view(), &[1, 2, 3], &mut out);
        assert!(!out.contains(&0));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn stable_active_set_reports_clean() {
        let f = ViewFixture::grid(4, 4); // 16 warps, active set of 8
        let mut s = TwoLevel::new(1, 8);
        let mut out = Vec::new();
        assert!(s.order_dirty(0), "initially dirty");
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        assert!(!s.order_dirty(0), "full unblocked active set is a fixpoint");
        s.on_issue(
            0,
            0,
            IssueInfo {
                active_threads: 32,
                is_global_load: false,
            },
            &f.view(),
        );
        assert!(s.order_dirty(0), "rotation moved");
    }

    #[test]
    fn degenerate_all_blocked_state_stays_dirty() {
        // With every warp blocked the rebalance rotates blocked warps
        // through the active set on each call — never a fixpoint, so the
        // unit must keep recomputing.
        let mut f = ViewFixture::grid(1, 4);
        for w in &mut f.warps {
            w.blocked_on_longlat = true;
        }
        let mut s = TwoLevel::new(1, 2);
        let mut out = Vec::new();
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        assert!(s.order_dirty(0));
        let first = out.clone();
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        assert_ne!(first, out, "the degenerate state really does rotate");
    }

    #[test]
    fn all_blocked_still_produces_full_order() {
        let mut f = ViewFixture::grid(1, 4);
        for w in &mut f.warps {
            w.blocked_on_longlat = true;
        }
        let mut s = TwoLevel::new(1, 2);
        let mut out = Vec::new();
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
