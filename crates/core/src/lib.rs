//! # pro-core — the PRO progress-aware warp scheduler and its baselines
//!
//! This crate is the Rust implementation of the paper's primary
//! contribution: **PRO**, a warp scheduling algorithm that dynamically
//! prioritizes thread blocks (TBs) and warps by the *progress* they have
//! made (Anantpur & Govindarajan, IPDPS 2015), together with the three
//! baselines it is evaluated against:
//!
//! * [`lrr::Lrr`] — Loose Round Robin,
//! * [`gto::Gto`] — Greedy Then Oldest,
//! * [`tl::TwoLevel`] — the two-level scheduler of Narasiman et al.
//!   (MICRO-2011) as implemented in GPGPU-Sim,
//! * [`pro::Pro`] — the paper's algorithm (Algorithm 1 + Fig. 3 state
//!   machine), with ablation switches ([`pro::ProConfig`]).
//!
//! The crate is deliberately **substrate-free**: it defines the dynamic
//! state a scheduler is allowed to observe ([`WarpState`], [`TbState`],
//! [`SchedView`]) and the [`WarpScheduler`] trait through which the SM model
//! drives it. Scheduling is a two-step contract, exactly as in GPGPU-Sim:
//! every cycle each scheduler unit asks the policy for a *priority order*
//! over its warps ([`WarpScheduler::order`]), then the issue logic walks
//! that order and issues the first warp that can actually issue. Events
//! (issue, barrier arrival/release, warp/TB finish, TB launch) are fed back
//! so policies can maintain internal structures — PRO's TB state machine
//! lives entirely behind these hooks.

//!
//! Substrate-independent utility modules also live here so the whole
//! workspace stays free of external dependencies: [`rng`] (the
//! deterministic PRNG behind every stochastic input), [`prop`] (the
//! in-repo property-testing harness), [`fxhash`] (a fast deterministic
//! `HashMap` hasher for hot paths), [`pool`] (a deterministic scoped
//! fork-join pool used to parallelize independent simulation runs) and
//! [`calq`] (the bucketed calendar event queue behind the simulation
//! hot path's timing-event scheduling).

pub mod adaptive;
pub mod bdelta;
pub mod calq;
pub mod codec;
pub mod dirty;
pub mod fuzz;
pub mod fxhash;
pub mod gto;
pub mod lrr;
pub mod owl;
pub mod pool;
pub mod pro;
pub mod prop;
pub mod rng;
pub mod tl;

pub use adaptive::{AdaptiveConfig, ProAdaptive};
pub use calq::CalQueue;
pub use codec::{
    CodecError, ContainerKind, DeltaSnapshot, FileReader, FileWriter, Reader, Snapshot, Writer,
};
pub use fuzz::Fuzz;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use gto::Gto;
pub use lrr::Lrr;
pub use owl::OwlLite;
pub use pro::{Pro, ProConfig};
pub use tl::TwoLevel;

/// Index of a warp's hardware slot within an SM (0..max_warps).
pub type WarpSlot = usize;

/// Index of a thread block's hardware slot within an SM (0..max_tbs).
pub type TbSlot = usize;

/// Dynamic, scheduler-visible state of one warp slot. Maintained by the SM;
/// read-only for policies.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarpState {
    /// Slot holds a live (launched, unfinished) warp.
    pub active: bool,
    /// Owning TB slot.
    pub tb_slot: TbSlot,
    /// Warp index within its TB (0..warps_per_tb).
    pub index_in_tb: u32,
    /// Progress: instructions executed summed over constituent threads
    /// (incremented by the active-thread count at each issue — §III.E).
    pub progress: u64,
    /// Warp is parked at a barrier.
    pub at_barrier: bool,
    /// Warp has executed `exit` in all lanes.
    pub finished: bool,
    /// Warp is blocked on an outstanding global-memory load (scoreboard
    /// hazard on a long-latency destination). Used by the two-level
    /// scheduler's demotion rule.
    pub blocked_on_longlat: bool,
}

/// Dynamic, scheduler-visible state of one TB slot.
#[derive(Debug, Clone, Copy, Default)]
pub struct TbState {
    /// Slot holds a live TB.
    pub occupied: bool,
    /// The TB's global index within the grid.
    pub global_index: u32,
    /// Progress: instructions executed summed over all the TB's threads.
    pub progress: u64,
    /// Number of warps in this TB.
    pub num_warps: u32,
    /// Warps currently waiting at the barrier.
    pub warps_at_barrier: u32,
    /// Warps that have finished execution.
    pub warps_finished: u32,
    /// Cycle at which the TB was launched onto the SM (GTO's age).
    pub launched_at: u64,
}

/// Everything a policy may observe when ordering warps.
#[derive(Debug, Clone, Copy)]
pub struct SchedView<'a> {
    /// Current simulation cycle.
    pub cycle: u64,
    /// Warp slots (index = [`WarpSlot`]).
    pub warps: &'a [WarpState],
    /// TB slots (index = [`TbSlot`]).
    pub tbs: &'a [TbState],
    /// `TBsWaitingInThrdBlkSched()` from Algorithm 1: true while the global
    /// thread block scheduler still has unassigned TBs for this kernel —
    /// i.e. the kernel is in **fastTBPhase**.
    pub tbs_waiting_in_tb_scheduler: bool,
}

/// Information about an instruction at the moment it issues, for policies
/// that react to instruction kinds (two-level demotes on long-latency ops).
#[derive(Debug, Clone, Copy)]
pub struct IssueInfo {
    /// Number of active threads in the warp at issue (progress increment).
    pub active_threads: u32,
    /// The instruction is a global-memory load (long latency class).
    pub is_global_load: bool,
}

/// A warp scheduling policy for one SM (shared by that SM's scheduler
/// units, which is what lets PRO coordinate TB-level priorities across
/// units).
///
/// `Send` is required so a boxed policy can migrate with its SM onto a
/// worker thread when the simulator runs the SM array in parallel; every
/// policy is plain owned data, so this costs implementations nothing.
pub trait WarpScheduler: Send {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> &'static str;

    /// Called once per SM per cycle, before any [`WarpScheduler::order`]
    /// call for that cycle. Policies with periodic work (PRO's
    /// THRESHOLD-cycle re-sort) hook here.
    fn begin_cycle(&mut self, _view: &SchedView) {}

    /// Fill `out` with `candidates` reordered best-first for scheduler unit
    /// `unit`. `candidates` are the live warp slots assigned to the unit
    /// (the SM partitions warps across units; filtering for issuability
    /// happens afterwards in the issue logic). Implementations must output
    /// a permutation of `candidates`.
    fn order(
        &mut self,
        unit: u32,
        view: &SchedView,
        candidates: &[WarpSlot],
        out: &mut Vec<WarpSlot>,
    );

    /// Would a fresh [`WarpScheduler::order`] call for `unit` possibly
    /// return a different permutation than the previous one?
    ///
    /// The engine caches each unit's last order and, when this returns
    /// `false` **and** the candidate set is unchanged (plus, for policies
    /// where [`WarpScheduler::order_reads_longlat`] is true, the
    /// long-latency blocked set is unchanged), reuses it verbatim without
    /// calling `order()` at all. The contract is one-sided: returning
    /// `true` is always safe (the engine falls back to a from-scratch
    /// recompute, which is also the default), while returning `false`
    /// promises that a recompute under those unchanged inputs would be a
    /// no-op — both for the returned permutation and for any internal
    /// state `order()` mutates. Policies clear their dirty state for
    /// `unit` inside `order()`; the engine may still call `order()` while
    /// clean (e.g. after a snapshot restore drops its cache), which must
    /// then reproduce the cached permutation exactly.
    fn order_dirty(&mut self, _unit: u32) -> bool {
        true
    }

    /// Does [`WarpScheduler::order`] consult
    /// [`WarpState::blocked_on_longlat`]? The engine flips those flags on
    /// memory writebacks without a policy hook, so policies that read them
    /// (two-level's demotion logic) return `true` here and the engine adds
    /// the unit's blocked-warp set to its order-reuse fingerprint.
    fn order_reads_longlat(&self) -> bool {
        false
    }

    /// A warp issued an instruction.
    fn on_issue(&mut self, _unit: u32, _slot: WarpSlot, _info: IssueInfo, _view: &SchedView) {}

    /// A warp arrived at a barrier (paper: `insertBarrierWarp`).
    fn on_barrier_arrive(&mut self, _slot: WarpSlot, _tb: TbSlot, _view: &SchedView) {}

    /// All warps of TB `tb` reached the barrier; they are released this
    /// cycle.
    fn on_barrier_release(&mut self, _tb: TbSlot, _view: &SchedView) {}

    /// A warp finished execution (paper: `insertFinishWarp`).
    fn on_warp_finish(&mut self, _slot: WarpSlot, _tb: TbSlot, _view: &SchedView) {}

    /// A new TB was launched onto the SM.
    fn on_tb_launch(&mut self, _tb: TbSlot, _view: &SchedView) {}

    /// A TB finished and its slot is being freed.
    fn on_tb_finish(&mut self, _tb: TbSlot, _view: &SchedView) {}

    /// The priority-ordered TB global indices as the policy currently sees
    /// them (best first). `None` for policies without a TB-level concept.
    /// PRO implements this; it regenerates the paper's Table IV.
    fn tb_priority_trace(&self, _view: &SchedView) -> Option<Vec<u32>> {
        None
    }

    /// Serialize the policy's internal dynamic state for a checkpoint.
    /// Stateless policies keep the default no-op; stateful ones must write
    /// everything [`WarpScheduler::load_state`] needs to continue
    /// bit-identically.
    fn save_state(&self, _w: &mut codec::Writer) {}

    /// Restore internal state previously written by
    /// [`WarpScheduler::save_state`] into a freshly built policy of the
    /// same kind and geometry.
    fn load_state(&mut self, _r: &mut codec::Reader<'_>) -> Result<(), codec::CodecError> {
        Ok(())
    }
}

impl Snapshot for WarpState {
    fn save(&self, w: &mut Writer) {
        w.put_bool(self.active);
        w.put_usize(self.tb_slot);
        w.put_u32(self.index_in_tb);
        w.put_u64(self.progress);
        w.put_bool(self.at_barrier);
        w.put_bool(self.finished);
        w.put_bool(self.blocked_on_longlat);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WarpState {
            active: r.get_bool()?,
            tb_slot: r.get_usize()?,
            index_in_tb: r.get_u32()?,
            progress: r.get_u64()?,
            at_barrier: r.get_bool()?,
            finished: r.get_bool()?,
            blocked_on_longlat: r.get_bool()?,
        })
    }
}

impl Snapshot for TbState {
    fn save(&self, w: &mut Writer) {
        w.put_bool(self.occupied);
        w.put_u32(self.global_index);
        w.put_u64(self.progress);
        w.put_u32(self.num_warps);
        w.put_u32(self.warps_at_barrier);
        w.put_u32(self.warps_finished);
        w.put_u64(self.launched_at);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(TbState {
            occupied: r.get_bool()?,
            global_index: r.get_u32()?,
            progress: r.get_u64()?,
            num_warps: r.get_u32()?,
            warps_at_barrier: r.get_u32()?,
            warps_finished: r.get_u32()?,
            launched_at: r.get_u64()?,
        })
    }
}

/// The scheduling policies available to the simulator, benches and
/// examples. `FromStr` accepts the names used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Loose round robin.
    Lrr,
    /// Greedy then oldest.
    Gto,
    /// Two-level (Narasiman et al.), active-set size 8.
    Tl,
    /// PRO with the paper's defaults (THRESHOLD = 1000).
    Pro,
    /// PRO with barrier special-handling disabled (the paper's scalarProd
    /// diagnostic, §IV).
    ProNoBarrier,
    /// PRO with finishWait special-handling disabled (ablation).
    ProNoFinish,
    /// PRO that never enters the slow phase (ablation).
    ProNoSlowPhase,
    /// Adaptive PRO (the paper's §IV future work): probes whether barrier
    /// special-handling helps this kernel and locks the better mode.
    ProAdaptive,
    /// OWL-lite (CTA-aware priority groups, after Jog et al. ASPLOS-2013 —
    /// a related-work baseline the paper contrasts with PRO).
    Owl,
}

impl SchedulerKind {
    /// All kinds, for sweeps.
    pub const ALL: [SchedulerKind; 9] = [
        SchedulerKind::Lrr,
        SchedulerKind::Gto,
        SchedulerKind::Tl,
        SchedulerKind::Owl,
        SchedulerKind::Pro,
        SchedulerKind::ProNoBarrier,
        SchedulerKind::ProNoFinish,
        SchedulerKind::ProNoSlowPhase,
        SchedulerKind::ProAdaptive,
    ];

    /// The paper's four evaluated schedulers.
    pub const PAPER: [SchedulerKind; 4] = [
        SchedulerKind::Tl,
        SchedulerKind::Lrr,
        SchedulerKind::Gto,
        SchedulerKind::Pro,
    ];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Lrr => "LRR",
            SchedulerKind::Gto => "GTO",
            SchedulerKind::Tl => "TL",
            SchedulerKind::Pro => "PRO",
            SchedulerKind::ProNoBarrier => "PRO-NB",
            SchedulerKind::ProNoFinish => "PRO-NF",
            SchedulerKind::ProNoSlowPhase => "PRO-NS",
            SchedulerKind::ProAdaptive => "PRO-AD",
            SchedulerKind::Owl => "OWL",
        }
    }

    /// Instantiate the policy for an SM with `max_warps` warp slots,
    /// `max_tbs` TB slots and `units` scheduler units.
    pub fn build(&self, max_warps: usize, max_tbs: usize, units: u32) -> Box<dyn WarpScheduler> {
        let _ = max_tbs;
        match self {
            SchedulerKind::Lrr => Box::new(Lrr::new(max_warps, units)),
            SchedulerKind::Gto => Box::new(Gto::new(units)),
            SchedulerKind::Tl => Box::new(TwoLevel::new(units, 8)),
            SchedulerKind::Pro => Box::new(Pro::new(max_warps, max_tbs, ProConfig::default())),
            SchedulerKind::ProNoBarrier => Box::new(Pro::new(
                max_warps,
                max_tbs,
                ProConfig {
                    handle_barriers: false,
                    ..ProConfig::default()
                },
            )),
            SchedulerKind::ProNoFinish => Box::new(Pro::new(
                max_warps,
                max_tbs,
                ProConfig {
                    handle_finish: false,
                    ..ProConfig::default()
                },
            )),
            SchedulerKind::ProNoSlowPhase => Box::new(Pro::new(
                max_warps,
                max_tbs,
                ProConfig {
                    use_slow_phase: false,
                    ..ProConfig::default()
                },
            )),
            SchedulerKind::ProAdaptive => Box::new(ProAdaptive::new(
                max_warps,
                max_tbs,
                AdaptiveConfig::default(),
            )),
            SchedulerKind::Owl => Box::new(OwlLite::new(units, 2)),
        }
    }
}

impl std::str::FromStr for SchedulerKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lrr" => Ok(SchedulerKind::Lrr),
            "gto" => Ok(SchedulerKind::Gto),
            "tl" | "two-level" | "twolevel" => Ok(SchedulerKind::Tl),
            "pro" => Ok(SchedulerKind::Pro),
            "pro-nb" | "pro_nb" => Ok(SchedulerKind::ProNoBarrier),
            "pro-nf" | "pro_nf" => Ok(SchedulerKind::ProNoFinish),
            "pro-ns" | "pro_ns" => Ok(SchedulerKind::ProNoSlowPhase),
            "pro-ad" | "pro_ad" | "adaptive" => Ok(SchedulerKind::ProAdaptive),
            "owl" => Ok(SchedulerKind::Owl),
            other => Err(format!("unknown scheduler `{other}`")),
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Builders for hand-crafted [`SchedView`]s used across policy tests.
    use super::*;

    /// Mutable backing store for a view.
    #[derive(Debug, Clone, Default)]
    pub struct ViewFixture {
        pub cycle: u64,
        pub warps: Vec<WarpState>,
        pub tbs: Vec<TbState>,
        pub fast_phase: bool,
    }

    impl ViewFixture {
        /// `tbs` TBs each with `warps_per_tb` warps, slots assigned
        /// contiguously, all live with zero progress.
        pub fn grid(tbs: usize, warps_per_tb: usize) -> Self {
            let mut f = ViewFixture {
                cycle: 0,
                warps: vec![WarpState::default(); tbs * warps_per_tb],
                tbs: vec![TbState::default(); tbs],
                fast_phase: true,
            };
            for t in 0..tbs {
                f.tbs[t] = TbState {
                    occupied: true,
                    global_index: t as u32,
                    progress: 0,
                    num_warps: warps_per_tb as u32,
                    warps_at_barrier: 0,
                    warps_finished: 0,
                    launched_at: 0,
                };
                for w in 0..warps_per_tb {
                    f.warps[t * warps_per_tb + w] = WarpState {
                        active: true,
                        tb_slot: t,
                        index_in_tb: w as u32,
                        progress: 0,
                        at_barrier: false,
                        finished: false,
                        blocked_on_longlat: false,
                    };
                }
            }
            f
        }

        pub fn view(&self) -> SchedView<'_> {
            SchedView {
                cycle: self.cycle,
                warps: &self.warps,
                tbs: &self.tbs,
                tbs_waiting_in_tb_scheduler: self.fast_phase,
            }
        }

        /// All schedulable warp slots (single scheduler unit): live and not
        /// finished — the same filtering the SM applies before calling
        /// `order`.
        pub fn all_slots(&self) -> Vec<WarpSlot> {
            (0..self.warps.len())
                .filter(|&w| self.warps[w].active && !self.warps[w].finished)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parses_paper_names() {
        assert_eq!("lrr".parse::<SchedulerKind>().unwrap(), SchedulerKind::Lrr);
        assert_eq!("GTO".parse::<SchedulerKind>().unwrap(), SchedulerKind::Gto);
        assert_eq!(
            "two-level".parse::<SchedulerKind>().unwrap(),
            SchedulerKind::Tl
        );
        assert_eq!("PRO".parse::<SchedulerKind>().unwrap(), SchedulerKind::Pro);
        assert!("nope".parse::<SchedulerKind>().is_err());
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in SchedulerKind::ALL {
            let s = kind.build(48, 8, 2);
            assert_eq!(s.name(), kind.name());
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(SchedulerKind::Pro.to_string(), "PRO");
        assert_eq!(SchedulerKind::ProNoBarrier.to_string(), "PRO-NB");
    }
}
