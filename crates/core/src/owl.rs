//! OWL-lite — a CTA-aware baseline in the spirit of Jog et al.'s OWL
//! (ASPLOS 2013), which the paper's related-work section contrasts with
//! PRO. OWL's core scheduling idea is to concentrate issue bandwidth on a
//! small *priority group* of CTAs (always the same ones) so their warps
//! stay ahead and the rest arrive at long-latency instructions later;
//! the full system also adds cache-aware group rotation, which is out of
//! scope here.
//!
//! This implementation prioritizes resident TBs by launch order (oldest
//! first), with round robin among the warps of the leading group of
//! `group_size` TBs, then the remaining TBs' warps in TB order. It gives
//! the shootout a CTA-granular baseline between LRR (no structure) and
//! PRO (dynamic progress-based structure).

use crate::codec::{self, Snapshot};
use crate::dirty::DirtyMask;
use crate::{IssueInfo, SchedView, TbSlot, WarpScheduler, WarpSlot};

/// CTA-priority policy.
#[derive(Debug)]
pub struct OwlLite {
    group_size: usize,
    /// Per-unit rotation cursor within the priority group.
    last_issued: Vec<Option<WarpSlot>>,
    /// Order inputs: the rotation cursor (per unit) and the occupied-TB
    /// launch ranking (all units, via TB launch/finish).
    dirty: DirtyMask,
}

impl OwlLite {
    /// `group_size` = number of TBs in the always-prioritized group.
    pub fn new(units: u32, group_size: usize) -> Self {
        OwlLite {
            group_size: group_size.max(1),
            last_issued: vec![None; units as usize],
            dirty: DirtyMask::all(),
        }
    }
}

impl WarpScheduler for OwlLite {
    fn name(&self) -> &'static str {
        "OWL"
    }

    fn order(
        &mut self,
        unit: u32,
        view: &SchedView,
        candidates: &[WarpSlot],
        out: &mut Vec<WarpSlot>,
    ) {
        self.dirty.clear(unit);
        out.clear();
        out.extend_from_slice(candidates);
        // Rank TBs by launch time; the oldest `group_size` resident TBs are
        // the priority group.
        let mut tb_rank: Vec<(u64, usize)> = view
            .tbs
            .iter()
            .enumerate()
            .filter(|(_, t)| t.occupied)
            .map(|(i, t)| (t.launched_at, i))
            .collect();
        tb_rank.sort_unstable();
        let rank_of = |tb: usize| -> usize {
            tb_rank
                .iter()
                .position(|&(_, t)| t == tb)
                .unwrap_or(usize::MAX)
        };
        out.sort_by_key(|&w| {
            let tb = view.warps[w].tb_slot;
            let r = rank_of(tb);
            // Priority group first (rank < group_size), then the rest.
            let band = usize::from(r >= self.group_size);
            (band, r, w)
        });
        // Round robin inside the priority band: rotate past the last issued
        // warp if it leads the list.
        if let Some(last) = self.last_issued[unit as usize] {
            if let Some(pos) = out.iter().position(|&w| w == last) {
                let band_end = out
                    .iter()
                    .position(|&w| rank_of(view.warps[w].tb_slot) >= self.group_size)
                    .unwrap_or(out.len());
                if pos < band_end {
                    out[..band_end].rotate_left((pos + 1) % band_end.max(1));
                }
            }
        }
    }

    fn order_dirty(&mut self, unit: u32) -> bool {
        self.dirty.is_dirty(unit)
    }

    fn on_issue(&mut self, unit: u32, slot: WarpSlot, _info: IssueInfo, _view: &SchedView) {
        let u = unit as usize;
        if self.last_issued[u] != Some(slot) {
            self.last_issued[u] = Some(slot);
            self.dirty.mark(unit);
        }
    }

    fn on_warp_finish(&mut self, slot: WarpSlot, _tb: usize, _view: &SchedView) {
        for (u, l) in self.last_issued.iter_mut().enumerate() {
            if *l == Some(slot) {
                *l = None;
                self.dirty.mark(u as u32);
            }
        }
    }

    fn on_tb_launch(&mut self, _tb: TbSlot, _view: &SchedView) {
        self.dirty.mark_all();
    }

    fn on_tb_finish(&mut self, _tb: TbSlot, _view: &SchedView) {
        // Freeing a slot shifts the launch-order rank of every younger TB,
        // which can move warps across the priority-band boundary.
        self.dirty.mark_all();
    }

    fn save_state(&self, w: &mut codec::Writer) {
        self.last_issued.save(w);
        self.dirty.save(w);
    }

    fn load_state(&mut self, r: &mut codec::Reader<'_>) -> Result<(), codec::CodecError> {
        self.last_issued = Snapshot::load(r)?;
        self.dirty = Snapshot::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::ViewFixture;

    #[test]
    fn oldest_tbs_form_the_priority_group() {
        let mut f = ViewFixture::grid(3, 2);
        f.tbs[0].launched_at = 30;
        f.tbs[1].launched_at = 10; // oldest
        f.tbs[2].launched_at = 20;
        let mut s = OwlLite::new(1, 1);
        let mut out = Vec::new();
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        // TB1's warps (slots 2,3) lead; then TB2 (4,5); then TB0 (0,1).
        assert_eq!(out, vec![2, 3, 4, 5, 0, 1]);
    }

    #[test]
    fn rotation_within_the_group() {
        let f = ViewFixture::grid(2, 3); // both launched at 0; group = 1 TB
        let mut s = OwlLite::new(1, 1);
        let mut out = Vec::new();
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        assert_eq!(&out[..3], &[0, 1, 2], "TB0's warps lead");
        s.on_issue(
            0,
            0,
            IssueInfo {
                active_threads: 32,
                is_global_load: false,
            },
            &f.view(),
        );
        s.order(0, &f.view(), &f.all_slots(), &mut out);
        assert_eq!(&out[..3], &[1, 2, 0], "rotated past the issued warp");
        assert_eq!(&out[3..], &[3, 4, 5], "non-group TB order stable");
    }

    #[test]
    fn output_is_a_permutation() {
        let f = ViewFixture::grid(4, 2);
        let mut s = OwlLite::new(2, 2);
        let mut out = Vec::new();
        let cands = vec![1, 2, 5, 6];
        s.order(1, &f.view(), &cands, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, cands);
    }

    #[test]
    fn dirty_tracks_cursor_and_tb_residency() {
        let f = ViewFixture::grid(2, 2);
        let mut s = OwlLite::new(2, 1);
        let mut out = Vec::new();
        s.order(0, &f.view(), &[0, 2], &mut out);
        s.order(1, &f.view(), &[1, 3], &mut out);
        assert!(!s.order_dirty(0) && !s.order_dirty(1));
        s.on_issue(
            0,
            0,
            IssueInfo {
                active_threads: 32,
                is_global_load: false,
            },
            &f.view(),
        );
        assert!(s.order_dirty(0) && !s.order_dirty(1), "cursor is per unit");
        // Residency changes re-rank every TB for every unit.
        s.order(0, &f.view(), &[0, 2], &mut out);
        s.on_tb_finish(1, &f.view());
        assert!(s.order_dirty(0) && s.order_dirty(1));
    }
}
