//! A small, dependency-free property-testing harness.
//!
//! Replaces `proptest` for this workspace. A [`Strategy`] describes how to
//! build a random input from a [`Gen`] choice source; [`check`] generates a
//! fixed number of cases from a seeded [`SplitMix64`] stream, runs the
//! property on each, and on failure shrinks the input and panics with a
//! reproducing seed.
//!
//! # Writing a property
//!
//! ```
//! use pro_core::prop::{any, check, Config};
//! use pro_core::{prop_assert, prop_assert_eq};
//!
//! check(Config::default(), (any::<u32>(), any::<u32>()), |&(a, b)| {
//!     prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
//!     Ok(())
//! });
//! ```
//!
//! The property body returns [`CaseResult`]; the [`prop_assert!`](crate::prop_assert),
//! [`prop_assert_eq!`](crate::prop_assert_eq), [`prop_assert_ne!`](crate::prop_assert_ne) and [`prop_assume!`](crate::prop_assume) macros
//! early-return the right variants, mirroring the proptest idiom.
//!
//! # Determinism, seeds, and reproduction
//!
//! Case generation is fully deterministic: [`Config::seed`] seeds a
//! [`SplitMix64`] stream from which each case draws its own sub-seed. A
//! failure report prints that case seed; re-running the test binary with
//! `PRO_PROP_SEED=<seed>` makes [`check`] run exactly that case (then
//! shrink and fail again), which is the supported way to reproduce and
//! debug a failing case.
//!
//! # Shrinking
//!
//! Generation records the raw 64-bit draws it consumed. Shrinking performs
//! linear passes over that recorded choice sequence — trying truncation,
//! then zeroing and geometric reduction at each position — replaying the
//! generator on each mutated sequence, and keeping any mutation that still
//! fails the property. Because every strategy (including [`map`ped](Map)
//! and [`one_of`] strategies) regenerates from the sequence, all inputs
//! produced during shrinking are valid by construction.

use crate::rng::{SplitMix64, UniformRange};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

/// Why a single case did not pass.
#[derive(Debug)]
pub enum CaseError {
    /// The property's assertion failed (the message is reported).
    Fail(String),
    /// The input did not satisfy a [`prop_assume!`](crate::prop_assume) precondition; the case
    /// is discarded and regenerated, not counted as a failure.
    Reject,
}

impl CaseError {
    /// Construct the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseError::Fail(msg.into())
    }
}

/// Outcome of running the property body on one input.
pub type CaseResult = Result<(), CaseError>;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required (default 256).
    pub cases: u32,
    /// Seed of the run's case-seed stream. Fixed by default so CI runs are
    /// reproducible; override per run with the `PRO_PROP_SEED` env var.
    pub seed: u64,
    /// Budget of replay attempts during shrinking.
    pub max_shrink_steps: u32,
    /// Maximum [`prop_assume!`](crate::prop_assume) discards before the run aborts.
    pub max_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: crate::rng::GOLDEN_SEED,
            max_shrink_steps: 2048,
            max_rejects: 8192,
        }
    }
}

impl Config {
    /// Default configuration with a custom case count.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// The choice source strategies draw from.
///
/// In recording mode it forwards a seeded [`SplitMix64`] and logs every
/// raw draw; in replay mode it feeds back a (possibly mutated) recorded
/// sequence, returning 0 once the sequence is exhausted so that replayed
/// generation is always total.
#[derive(Debug)]
pub struct Gen {
    rng: SplitMix64,
    replay: Option<Vec<u64>>,
    pos: usize,
    log: Vec<u64>,
}

impl Gen {
    /// A recording source seeded with `seed`.
    pub fn record(seed: u64) -> Self {
        Gen {
            rng: SplitMix64::new(seed),
            replay: None,
            pos: 0,
            log: Vec::new(),
        }
    }

    /// A replaying source over a recorded choice sequence.
    pub fn replay(choices: Vec<u64>) -> Self {
        Gen {
            rng: SplitMix64::new(0),
            replay: Some(choices),
            pos: 0,
            log: Vec::new(),
        }
    }

    /// One raw 64-bit choice (recorded, or replayed; 0 past the end of a
    /// replay).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        match &self.replay {
            Some(seq) => {
                let v = seq.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                v
            }
            None => {
                let v = self.rng.next_u64();
                self.log.push(v);
                v
            }
        }
    }

    /// One 32-bit choice (high half of a raw draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `[0, 1)` from one choice.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        crate::rng::f64_from_bits(self.next_u64())
    }

    /// Bernoulli draw from one choice.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value in `lo..hi` from one choice.
    #[inline]
    pub fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample_from(range, self.next_u64())
    }

    fn into_log(self) -> Vec<u64> {
        self.log
    }
}

/// A recipe for building random inputs of type [`Strategy::Value`].
///
/// Strategies are deterministic functions of the [`Gen`] choice stream;
/// all randomness lives in the stream, which is what makes recorded cases
/// replayable and shrinkable.
pub trait Strategy {
    /// The input type this strategy produces.
    type Value: Debug;

    /// Build one value, consuming choices from `g`.
    fn generate(&self, g: &mut Gen) -> Self::Value;
}

/// Combinator methods available on every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Transform generated values with `f` (shrinking still operates on
    /// the underlying choice sequence, so mapped strategies shrink too).
    /// Named `prop_map` rather than `map` because ranges are both
    /// [`Iterator`]s and strategies.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// Type-erase, for use with [`one_of`].
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy> StrategyExt for S {}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, g: &mut Gen) -> Self::Value {
        (**self).generate(g)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, g: &mut Gen) -> Self::Value {
        (**self).generate(g)
    }
}

/// Uniform values from a half-open range: `0u32..64` is a strategy.
impl<T: UniformRange + Debug> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        g.gen_range(self.clone())
    }
}

/// Values with the full natural domain of their type, via [`any`].
pub struct Any<T>(PhantomData<T>);

/// Strategy over a type's full natural domain (`any::<u32>()`,
/// `any::<bool>()`, `any::<f32>()` — floats include NaN and infinities;
/// gate with [`prop_assume!`](crate::prop_assume) where finiteness matters).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a canonical full-domain generator, for [`any`].
pub trait Arbitrary: Debug {
    /// Build one arbitrary value from the choice stream.
    fn arbitrary(g: &mut Gen) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        T::arbitrary(g)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(g: &mut Gen) -> Self {
                g.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(g: &mut Gen) -> Self {
        g.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    #[inline]
    fn arbitrary(g: &mut Gen) -> Self {
        f32::from_bits(g.next_u32())
    }
}

impl Arbitrary for f64 {
    #[inline]
    fn arbitrary(g: &mut Gen) -> Self {
        f64::from_bits(g.next_u64())
    }
}

/// The constant strategy: always produces a clone of its value.
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _g: &mut Gen) -> T {
        self.0.clone()
    }
}

/// See [`StrategyExt::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        (self.f)(self.base.generate(g))
    }
}

/// See [`from_fn`].
pub struct FromFn<F>(F);

/// Escape hatch: a strategy from a closure over the raw choice stream.
pub fn from_fn<T: Debug, F: Fn(&mut Gen) -> T>(f: F) -> FromFn<F> {
    FromFn(f)
}

impl<T: Debug, F: Fn(&mut Gen) -> T> Strategy for FromFn<F> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        (self.0)(g)
    }
}

/// See [`one_of`].
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

/// Choice strategy: picks one of `options` uniformly per case, then
/// generates from it. Panics if `options` is empty.
pub fn one_of<T: Debug>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!options.is_empty(), "one_of: no options");
    OneOf { options }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        let i = g.gen_range(0..self.options.len());
        self.options[i].generate(g)
    }
}

/// See [`select`].
pub struct Select<T: Clone + Debug>(Vec<T>);

/// Choice strategy over concrete values: picks one element of `values`
/// uniformly per case. Panics if `values` is empty.
pub fn select<T: Clone + Debug>(values: impl Into<Vec<T>>) -> Select<T> {
    let v = values.into();
    assert!(!v.is_empty(), "select: no values");
    Select(v)
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        let i = g.gen_range(0..self.0.len());
        self.0[i].clone()
    }
}

/// See [`vec_of`].
pub struct VecOf<S> {
    elem: S,
    len: Range<usize>,
}

/// Vector strategy: a length drawn from `len`, then that many elements
/// from `elem`. Use `n..n + 1` for an exact length.
pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecOf<S> {
    assert!(len.start < len.end, "vec_of: empty length range");
    VecOf { elem, len }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
        let n = g.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.generate(g)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, g: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(g),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Run `test` on `cfg.cases` inputs generated by `strategy`, panicking
/// with a shrunk counterexample and its reproducing seed on the first
/// failure.
///
/// If the `PRO_PROP_SEED` environment variable is set (decimal, or hex
/// with an `0x` prefix), exactly that one case is generated and run —
/// the supported path for reproducing a printed failure.
pub fn check<S: Strategy>(cfg: Config, strategy: S, test: impl Fn(&S::Value) -> CaseResult) {
    if let Ok(var) = std::env::var("PRO_PROP_SEED") {
        let seed = parse_seed(&var)
            .unwrap_or_else(|| panic!("PRO_PROP_SEED: cannot parse `{var}` as a u64 seed"));
        run_case(&cfg, &strategy, &test, seed, 0);
        return;
    }
    let mut seed_stream = SplitMix64::new(cfg.seed);
    let mut accepted = 0u32;
    let mut rejects = 0u32;
    while accepted < cfg.cases {
        let case_seed = seed_stream.next_u64();
        if run_case(&cfg, &strategy, &test, case_seed, accepted) {
            accepted += 1;
        } else {
            rejects += 1;
            assert!(
                rejects <= cfg.max_rejects,
                "property rejected {rejects} inputs (prop_assume) before reaching \
                 {} accepted cases — loosen the strategy or the assumption",
                cfg.cases
            );
        }
    }
}

/// Returns true if the case counts toward the accepted total (i.e. it was
/// not rejected by an assumption). Panics on failure.
fn run_case<S: Strategy>(
    cfg: &Config,
    strategy: &S,
    test: &impl Fn(&S::Value) -> CaseResult,
    case_seed: u64,
    passed_so_far: u32,
) -> bool {
    let mut g = Gen::record(case_seed);
    let value = strategy.generate(&mut g);
    match test(&value) {
        Ok(()) => true,
        Err(CaseError::Reject) => false,
        Err(CaseError::Fail(msg)) => {
            let choices = g.into_log();
            let (min_value, min_msg) = minimize(cfg, strategy, test, choices, &msg);
            panic!(
                "property failed after {passed_so_far} passing case(s): {min_msg}\n\
                 \x20 minimized input: {min_value:?}\n\
                 \x20 original input:  {value:?}\n\
                 \x20 original error:  {msg}\n\
                 \x20 reproduce with:  PRO_PROP_SEED=0x{case_seed:016x} cargo test <this test>"
            );
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Linear-pass shrinking over the recorded choice sequence: truncate the
/// tail, then shrink each position toward zero, keeping mutations that
/// still fail. Returns the smallest still-failing input found within the
/// step budget.
fn minimize<S: Strategy>(
    cfg: &Config,
    strategy: &S,
    test: &impl Fn(&S::Value) -> CaseResult,
    mut choices: Vec<u64>,
    first_msg: &str,
) -> (S::Value, String) {
    let mut steps = 0u32;
    let mut msg = first_msg.to_string();
    // Re-check a candidate sequence; Some(msg) if the property still fails.
    let attempt = |seq: &[u64], steps: &mut u32| -> Option<String> {
        if *steps >= cfg.max_shrink_steps {
            return None;
        }
        *steps += 1;
        let mut g = Gen::replay(seq.to_vec());
        let v = strategy.generate(&mut g);
        match test(&v) {
            Err(CaseError::Fail(m)) => Some(m),
            _ => None,
        }
    };

    loop {
        let mut improved = false;
        // Pass 1: drop the tail (half, then single trailing element).
        for cut in [choices.len() / 2, choices.len().saturating_sub(1)] {
            if cut < choices.len() {
                if let Some(m) = attempt(&choices[..cut], &mut steps) {
                    choices.truncate(cut);
                    msg = m;
                    improved = true;
                }
            }
        }
        // Pass 2: left-to-right, shrink each choice toward zero. Every
        // candidate is strictly smaller than the current value, so the
        // passes terminate even without the step budget.
        for i in 0..choices.len() {
            let v = choices[i];
            for cand in [0, v / 2, v / 2 + v / 4] {
                if cand == choices[i] {
                    continue;
                }
                let prev = choices[i];
                choices[i] = cand;
                match attempt(&choices, &mut steps) {
                    Some(m) => {
                        msg = m;
                        improved = true;
                        break;
                    }
                    None => choices[i] = prev,
                }
            }
        }
        if !improved || steps >= cfg.max_shrink_steps {
            break;
        }
    }
    let mut g = Gen::replay(choices);
    (strategy.generate(&mut g), msg)
}

/// Assert a condition inside a property body, early-returning a
/// [`CaseError::Fail`] with the stringified condition (or a formatted
/// message) instead of panicking, so the harness can shrink the input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::CaseError::fail(format!($($fmt)+)));
        }
    };
}

/// [`prop_assert!`](crate::prop_assert) for equality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                va,
                vb,
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        if va != vb {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                va,
                vb,
                format!($($fmt)+)
            )));
        }
    }};
}

/// [`prop_assert!`](crate::prop_assert) for inequality, reporting the operand.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err($crate::prop::CaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` ({} == {})",
                va,
                vb,
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

/// Discard the current case (not a failure) when a generated input misses
/// a precondition. Discards are capped by [`Config::max_rejects`].
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::prop::CaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::catch_unwind;

    fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
        let err = catch_unwind(f).expect_err("expected the property to fail");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check(Config::with_cases(50), any::<u32>(), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        assert_eq!(counter.get(), 50);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = vec_of(any::<u32>(), 0..10);
        let a = strat.generate(&mut Gen::record(42));
        let b = strat.generate(&mut Gen::record(42));
        let c = strat.generate(&mut Gen::record(43));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should give different vectors");
    }

    #[test]
    fn replay_reproduces_recorded_value() {
        let strat = (0u32..100, vec_of(0u8..10, 1..6));
        let mut g = Gen::record(7);
        let original = strat.generate(&mut g);
        let replayed = strat.generate(&mut Gen::replay(g.into_log()));
        assert_eq!(original, replayed);
    }

    #[test]
    fn failure_reports_seed_and_shrinks() {
        let msg = panic_message(|| {
            check(Config::with_cases(256), any::<u32>(), |&x| {
                prop_assert!(x < 1000, "got {x}");
                Ok(())
            });
        });
        assert!(msg.contains("PRO_PROP_SEED=0x"), "no seed in: {msg}");
        assert!(msg.contains("minimized input:"), "no shrink in: {msg}");
        // The minimized counterexample should be near the boundary.
        let min: u32 = msg
            .lines()
            .find(|l| l.contains("minimized input:"))
            .and_then(|l| l.split(':').next_back())
            .and_then(|v| v.trim().parse().ok())
            .expect("parse minimized value");
        assert!((1000..100_000).contains(&min), "poorly shrunk: {min}");
    }

    #[test]
    fn shrinking_shortens_vectors() {
        let msg = panic_message(|| {
            check(
                Config::with_cases(256),
                vec_of(any::<u32>(), 0..24),
                |v: &Vec<u32>| {
                    prop_assert!(v.iter().all(|&x| x < 500), "big element");
                    Ok(())
                },
            );
        });
        let min_line = msg
            .lines()
            .find(|l| l.contains("minimized input:"))
            .expect("minimized line")
            .to_string();
        // A minimal counterexample needs exactly one offending element.
        let elems = min_line.matches(',').count() + 1;
        assert!(elems <= 2, "vector barely shrunk: {min_line}");
    }

    #[test]
    fn assume_discards_without_failing() {
        let counter = std::cell::Cell::new(0u32);
        check(Config::with_cases(32), any::<u32>(), |&x| {
            prop_assume!(x % 2 == 0);
            counter.set(counter.get() + 1);
            prop_assert!(x % 2 == 0);
            Ok(())
        });
        assert_eq!(counter.get(), 32, "rejected cases must be replaced");
    }

    #[test]
    fn one_of_and_just_and_select_cover_options() {
        let strat = one_of(vec![
            Just(0u32).boxed(),
            (10u32..20).boxed(),
            select(vec![99u32, 100]).boxed(),
        ]);
        let mut seen_const = false;
        let mut seen_range = false;
        let mut seen_select = false;
        let mut g = Gen::record(1);
        for _ in 0..200 {
            match strat.generate(&mut g) {
                0 => seen_const = true,
                10..=19 => seen_range = true,
                99 | 100 => seen_select = true,
                other => panic!("impossible value {other}"),
            }
        }
        assert!(seen_const && seen_range && seen_select);
    }

    #[test]
    fn map_transforms_and_still_shrinks() {
        #[derive(Debug)]
        struct Wrapper(u64);
        let msg = panic_message(|| {
            check(
                Config::with_cases(64),
                (0u64..1 << 40).prop_map(Wrapper),
                |w: &Wrapper| {
                    prop_assert!(w.0 < 1 << 20);
                    Ok(())
                },
            );
        });
        assert!(msg.contains("Wrapper"), "mapped type lost: {msg}");
        assert!(msg.contains("minimized input:"), "no shrink: {msg}");
    }
}
