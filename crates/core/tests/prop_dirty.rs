//! Property-based tests of the `order_dirty` reuse contract (DESIGN.md
//! §15): for every policy, an engine that caches each unit's last order
//! and reuses it while the policy reports clean (and the unit's candidate
//! and blocked fingerprints are unchanged) must produce exactly the
//! orderings of an engine that recomputes from scratch every cycle. Runs
//! on the in-repo `pro_core::prop` harness, lockstep like `prop_calq.rs`.

use pro_core::prop::{any, check, vec_of, Config, Strategy, StrategyExt};
use pro_core::{
    prop_assert_eq, IssueInfo, Pro, ProConfig, SchedView, SchedulerKind, TbState,
    WarpScheduler, WarpSlot, WarpState,
};

const WARPS_PER_TB: usize = 4;
const UNITS: u32 = 2;

#[derive(Debug, Clone)]
struct Fixture {
    warps: Vec<WarpState>,
    tbs: Vec<TbState>,
    fast: bool,
    cycle: u64,
}

impl Fixture {
    fn view(&self) -> SchedView<'_> {
        SchedView {
            cycle: self.cycle,
            warps: &self.warps,
            tbs: &self.tbs,
            tbs_waiting_in_tb_scheduler: self.fast,
        }
    }
}

/// Strategy: a random 2-6 TB fixture, warps spread across both units.
fn arb_fixture() -> impl Strategy<Value = Fixture> {
    (
        2usize..7,
        vec_of((any::<u16>(), any::<bool>()), 24..25),
        vec_of(any::<u16>(), 6..7),
        0u64..10_000,
    )
        .prop_map(|(ntbs, wflags, tbprog, cycle)| {
            let mut warps = vec![WarpState::default(); ntbs * WARPS_PER_TB];
            let mut tbs = vec![TbState::default(); ntbs];
            for t in 0..ntbs {
                tbs[t] = TbState {
                    occupied: true,
                    global_index: t as u32,
                    progress: tbprog[t] as u64,
                    num_warps: WARPS_PER_TB as u32,
                    warps_at_barrier: 0,
                    warps_finished: 0,
                    launched_at: t as u64 * 7,
                };
                for w in 0..WARPS_PER_TB {
                    let slot = t * WARPS_PER_TB + w;
                    let (prog, blocked) = wflags[slot % wflags.len()];
                    warps[slot] = WarpState {
                        active: true,
                        tb_slot: t,
                        index_in_tb: w as u32,
                        progress: prog as u64,
                        at_barrier: false,
                        finished: false,
                        blocked_on_longlat: blocked,
                    };
                }
            }
            Fixture {
                warps,
                tbs,
                fast: true,
                cycle,
            }
        })
}

/// The engine's per-unit issue-order cache, mirrored exactly: last order,
/// candidate bitset, blocked bitset, and a validity flag (`Sm::issue_unit`
/// keeps the same four alongside each scheduler unit).
struct OrderCache {
    bufs: [Vec<WarpSlot>; 2],
    cands: [u64; 2],
    blocked: [u64; 2],
    valid: [bool; 2],
    reuses: u64,
    recomputes: u64,
}

impl OrderCache {
    fn new() -> Self {
        OrderCache {
            bufs: [Vec::new(), Vec::new()],
            cands: [0; 2],
            blocked: [0; 2],
            valid: [false; 2],
            reuses: 0,
            recomputes: 0,
        }
    }
}

/// A unit's candidate list (ascending slot order, like the engine's bitset
/// walk) plus the candidate and blocked fingerprints the engine compares.
fn unit_inputs(f: &Fixture, unit: u32) -> (Vec<WarpSlot>, u64, u64) {
    let mut cands = Vec::new();
    let (mut cbits, mut bbits) = (0u64, 0u64);
    for (w, warp) in f.warps.iter().enumerate() {
        if w as u32 % UNITS != unit || !warp.active {
            continue;
        }
        if warp.blocked_on_longlat {
            bbits |= 1 << w;
        }
        if !warp.finished {
            cands.push(w);
            cbits |= 1 << w;
        }
    }
    (cands, cbits, bbits)
}

/// Deliver one fixture-mutating event to both policies. Mirrors the storm
/// harness in `prop_sched.rs`, with one addition the engine performs
/// without any policy hook: `blocked_on_longlat` flips (event 3), which is
/// what the `order_reads_longlat` fingerprint must absorb for two-level.
fn apply_event(
    f: &mut Fixture,
    pols: &mut [&mut dyn WarpScheduler; 2],
    ev: u8,
    x: usize,
    extra: u8,
) {
    let slot = x % f.warps.len();
    let tb = f.warps[slot].tb_slot;
    match ev {
        1 => {
            // Barrier arrive, releasing the TB once everyone is parked.
            if f.warps[slot].active && !f.warps[slot].at_barrier && !f.warps[slot].finished {
                f.warps[slot].at_barrier = true;
                f.tbs[tb].warps_at_barrier += 1;
                for p in pols.iter_mut() {
                    p.on_barrier_arrive(slot, tb, &SchedView {
                        cycle: f.cycle,
                        warps: &f.warps,
                        tbs: &f.tbs,
                        tbs_waiting_in_tb_scheduler: f.fast,
                    });
                }
                if f.tbs[tb].warps_at_barrier + f.tbs[tb].warps_finished == f.tbs[tb].num_warps {
                    for w in 0..f.warps.len() {
                        if f.warps[w].active && f.warps[w].tb_slot == tb {
                            f.warps[w].at_barrier = false;
                        }
                    }
                    f.tbs[tb].warps_at_barrier = 0;
                    for p in pols.iter_mut() {
                        p.on_barrier_release(tb, &SchedView {
                            cycle: f.cycle,
                            warps: &f.warps,
                            tbs: &f.tbs,
                            tbs_waiting_in_tb_scheduler: f.fast,
                        });
                    }
                }
            }
        }
        2 => {
            // Finish a warp, retiring the TB when it is the last one.
            if f.warps[slot].active && !f.warps[slot].finished && !f.warps[slot].at_barrier {
                f.warps[slot].finished = true;
                f.tbs[tb].warps_finished += 1;
                for p in pols.iter_mut() {
                    p.on_warp_finish(slot, tb, &SchedView {
                        cycle: f.cycle,
                        warps: &f.warps,
                        tbs: &f.tbs,
                        tbs_waiting_in_tb_scheduler: f.fast,
                    });
                }
                if f.tbs[tb].warps_finished == f.tbs[tb].num_warps {
                    for p in pols.iter_mut() {
                        p.on_tb_finish(tb, &SchedView {
                            cycle: f.cycle,
                            warps: &f.warps,
                            tbs: &f.tbs,
                            tbs_waiting_in_tb_scheduler: f.fast,
                        });
                    }
                    for w in 0..f.warps.len() {
                        if f.warps[w].tb_slot == tb {
                            f.warps[w] = WarpState::default();
                        }
                    }
                    f.tbs[tb] = TbState::default();
                }
            }
        }
        3 => {
            // A memory writeback (or new miss) flips the long-latency flag
            // with NO policy hook — exactly what the engine does.
            if f.warps[slot].active && !f.warps[slot].finished {
                f.warps[slot].blocked_on_longlat = !f.warps[slot].blocked_on_longlat;
            }
        }
        4 => {
            f.cycle += 500;
        }
        _ => {
            // Out-of-band issue (no fresh order this cycle).
            if f.warps[slot].active && !f.warps[slot].finished && !f.warps[slot].at_barrier {
                issue(f, pols, (slot as u32) % UNITS, slot, extra & 1 == 0);
            }
        }
    }
}

fn issue(f: &mut Fixture, pols: &mut [&mut dyn WarpScheduler; 2], unit: u32, slot: WarpSlot, load: bool) {
    f.warps[slot].progress += 32;
    let tb = f.warps[slot].tb_slot;
    f.tbs[tb].progress += 32;
    if load {
        f.warps[slot].blocked_on_longlat = true;
    }
    let view = SchedView {
        cycle: f.cycle,
        warps: &f.warps,
        tbs: &f.tbs,
        tbs_waiting_in_tb_scheduler: f.fast,
    };
    for p in pols.iter_mut() {
        p.on_issue(
            unit,
            slot,
            IssueInfo {
                active_threads: 32,
                is_global_load: load,
            },
            &view,
        );
    }
}

/// The core lockstep property: drive a scratch instance (order() every
/// unit-cycle) and an incremental instance (engine reuse condition) of the
/// same policy through identical event storms; every unit-cycle must see
/// identical orderings, whether reused or recomputed. Tick events issue
/// the order's front warp *between* sibling units, which is exactly the
/// mid-cycle window where PRO's deferred rank rebuild must keep the unit
/// dirty (DESIGN.md §15).
#[test]
fn reused_orders_match_scratch_recomputes_for_every_policy() {
    check(
        Config::default(),
        (arb_fixture(), vec_of((0u8..6, 0usize..48, any::<u8>()), 0..48)),
        |(f0, events): &(Fixture, Vec<(u8, usize, u8)>)| {
            for kind in SchedulerKind::ALL {
                let mut f = f0.clone();
                let mut scratch = kind.build(f.warps.len(), f.tbs.len(), UNITS);
                let mut inc = kind.build(f.warps.len(), f.tbs.len(), UNITS);
                for t in 0..f.tbs.len() {
                    scratch.on_tb_launch(t, &f.view());
                    inc.on_tb_launch(t, &f.view());
                }
                let mut cache = OrderCache::new();
                let mut scratch_out = Vec::new();
                for &(ev, x, extra) in events {
                    if ev != 0 {
                        let mut pols: [&mut dyn WarpScheduler; 2] =
                            [scratch.as_mut(), inc.as_mut()];
                        apply_event(&mut f, &mut pols, ev, x, extra);
                        continue;
                    }
                    // Tick: one simulated cycle with a fresh order per unit.
                    f.cycle += 1;
                    if extra & 0x80 != 0 {
                        // The TB scheduler drained; the phase flip is only
                        // ever observed at a cycle boundary (SM contract).
                        f.fast = false;
                    }
                    scratch.begin_cycle(&f.view());
                    inc.begin_cycle(&f.view());
                    for unit in 0..UNITS {
                        let u = unit as usize;
                        let (cands, cbits, bbits) = unit_inputs(&f, unit);
                        scratch.order(unit, &f.view(), &cands, &mut scratch_out);
                        // The engine's exact reuse condition (Sm::issue_unit).
                        let reuse = cache.valid[u]
                            && cache.cands[u] == cbits
                            && (!inc.order_reads_longlat() || cache.blocked[u] == bbits)
                            && !inc.order_dirty(unit);
                        if reuse {
                            cache.reuses += 1;
                        } else {
                            inc.order(unit, &f.view(), &cands, &mut cache.bufs[u]);
                            cache.cands[u] = cbits;
                            cache.blocked[u] = bbits;
                            cache.valid[u] = true;
                            cache.recomputes += 1;
                        }
                        prop_assert_eq!(
                            &cache.bufs[u],
                            &scratch_out,
                            "{} unit {} cycle {} (reused={})",
                            kind.name(),
                            unit,
                            f.cycle,
                            reuse
                        );
                        // Sometimes issue the front runnable warp before the
                        // sibling unit orders — the engine does this, and it
                        // is the window for PRO's deferred-rank hazard.
                        if extra & (1 << u) != 0 {
                            let front = cache.bufs[u].iter().copied().find(|&w| {
                                let warp = &f.warps[w];
                                warp.active
                                    && !warp.finished
                                    && !warp.at_barrier
                                    && !warp.blocked_on_longlat
                            });
                            if let Some(w) = front {
                                let mut pols: [&mut dyn WarpScheduler; 2] =
                                    [scratch.as_mut(), inc.as_mut()];
                                issue(&mut f, &mut pols, unit, w, extra & 4 != 0);
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

/// Regression: PRO defers rank rebuilds to `begin_cycle`, so an `order()`
/// computed while a rebuild is queued (an event landed between sibling
/// units) is deliberately stale and must NOT report clean — next cycle's
/// recompute would see the rebuilt table. This is the exact hazard the
/// deferred-clear in `Pro::order` guards.
#[test]
fn pro_stays_dirty_while_a_rank_rebuild_is_queued() {
    let mut f = Fixture {
        warps: vec![WarpState::default(); 3 * WARPS_PER_TB],
        tbs: vec![TbState::default(); 3],
        fast: true,
        cycle: 100,
    };
    for t in 0..3 {
        f.tbs[t] = TbState {
            occupied: true,
            global_index: t as u32,
            progress: 0,
            num_warps: WARPS_PER_TB as u32,
            warps_at_barrier: 0,
            warps_finished: 0,
            launched_at: t as u64,
        };
        for w in 0..WARPS_PER_TB {
            let slot = t * WARPS_PER_TB + w;
            f.warps[slot] = WarpState {
                active: true,
                tb_slot: t,
                index_in_tb: w as u32,
                progress: 0,
                at_barrier: false,
                finished: false,
                blocked_on_longlat: false,
            };
        }
    }
    let mut pro = Pro::new(f.warps.len(), f.tbs.len(), ProConfig::default());
    for t in 0..3 {
        pro.on_tb_launch(t, &f.view());
    }
    pro.begin_cycle(&f.view());
    let mut out = Vec::new();
    let (cands0, _, _) = unit_inputs(&f, 0);
    pro.order(0, &f.view(), &cands0, &mut out);
    assert!(!pro.order_dirty(0), "clean after an in-sync recompute");
    // Unit 0 retires a warp mid-cycle: the class change queues a rank
    // rebuild that only lands at the next begin_cycle.
    f.warps[0].finished = true;
    f.tbs[0].warps_finished = 1;
    pro.on_warp_finish(0, 0, &f.view());
    let (cands1, _, _) = unit_inputs(&f, 1);
    pro.order(1, &f.view(), &cands1, &mut out);
    assert!(
        pro.order_dirty(1),
        "an order computed from a stale rank table must stay dirty"
    );
    // Once begin_cycle lands the rebuild, a recompute goes clean again.
    f.cycle += 1;
    pro.begin_cycle(&f.view());
    pro.order(1, &f.view(), &cands1, &mut out);
    assert!(!pro.order_dirty(1), "clean after the rebuilt-table recompute");
}
