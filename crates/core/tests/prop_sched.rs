//! Property-based tests of the scheduling policies: every policy's `order`
//! must be a permutation of its candidates for arbitrary machine states,
//! and PRO's priority bands must hold for arbitrary event histories. Runs
//! on the in-repo `pro_core::prop` harness.

use pro_core::prop::{any, check, vec_of, Config, Strategy, StrategyExt};
use pro_core::{
    prop_assert, prop_assert_eq, prop_assume, IssueInfo, Pro, ProConfig, SchedView, SchedulerKind,
    TbState, WarpScheduler, WarpSlot, WarpState,
};

const WARPS_PER_TB: usize = 4;

#[derive(Debug, Clone)]
struct Fixture {
    warps: Vec<WarpState>,
    tbs: Vec<TbState>,
    fast: bool,
    cycle: u64,
}

impl Fixture {
    fn view(&self) -> SchedView<'_> {
        SchedView {
            cycle: self.cycle,
            warps: &self.warps,
            tbs: &self.tbs,
            tbs_waiting_in_tb_scheduler: self.fast,
        }
    }
    fn live_slots(&self) -> Vec<WarpSlot> {
        (0..self.warps.len())
            .filter(|&w| self.warps[w].active && !self.warps[w].finished)
            .collect()
    }
}

/// Strategy: a random 1-6 TB fixture with random per-warp progress and
/// blocked/barrier flags.
fn arb_fixture() -> impl Strategy<Value = Fixture> {
    (
        1usize..7,
        vec_of((any::<u16>(), any::<bool>(), 0u8..4), 24..25),
        vec_of(any::<u16>(), 6..7),
        any::<bool>(),
        0u64..10_000,
    )
        .prop_map(|(ntbs, wflags, tbprog, fast, cycle)| {
            let mut warps = vec![WarpState::default(); ntbs * WARPS_PER_TB];
            let mut tbs = vec![TbState::default(); ntbs];
            for t in 0..ntbs {
                tbs[t] = TbState {
                    occupied: true,
                    global_index: t as u32,
                    progress: tbprog[t] as u64,
                    num_warps: WARPS_PER_TB as u32,
                    warps_at_barrier: 0,
                    warps_finished: 0,
                    launched_at: t as u64 * 7,
                };
                for w in 0..WARPS_PER_TB {
                    let slot = t * WARPS_PER_TB + w;
                    let (prog, blocked, _) = wflags[slot % wflags.len()];
                    warps[slot] = WarpState {
                        active: true,
                        tb_slot: t,
                        index_in_tb: w as u32,
                        progress: prog as u64,
                        at_barrier: false,
                        finished: false,
                        blocked_on_longlat: blocked,
                    };
                }
            }
            Fixture {
                warps,
                tbs,
                fast,
                cycle,
            }
        })
}

#[test]
fn every_policy_orders_a_permutation() {
    check(
        Config::default(),
        (arb_fixture(), any::<u32>()),
        |(f, subset_mask)| {
            for kind in SchedulerKind::ALL {
                let mut policy = kind.build(f.warps.len(), f.tbs.len(), 2);
                for t in 0..f.tbs.len() {
                    policy.on_tb_launch(t, &f.view());
                }
                policy.begin_cycle(&f.view());
                // A random subset of live slots as candidates.
                let cands: Vec<WarpSlot> = f
                    .live_slots()
                    .into_iter()
                    .filter(|&w| subset_mask & (1 << (w % 32)) != 0)
                    .collect();
                let mut out = Vec::new();
                for unit in 0..2 {
                    policy.order(unit, &f.view(), &cands, &mut out);
                    let mut sorted = out.clone();
                    sorted.sort_unstable();
                    let mut expect = cands.clone();
                    expect.sort_unstable();
                    prop_assert_eq!(&sorted, &expect, "{} unit {}", kind.name(), unit);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn policies_survive_random_event_storms() {
    check(
        Config::default(),
        (arb_fixture(), vec_of((0u8..5, 0usize..24), 0..48)),
        |(f0, events)| {
            for kind in SchedulerKind::ALL {
                let mut f = f0.clone();
                let mut policy = kind.build(f.warps.len(), f.tbs.len(), 2);
                for t in 0..f.tbs.len() {
                    policy.on_tb_launch(t, &f.view());
                }
                for (ev, x) in events {
                    let slot = x % f.warps.len();
                    let tb = f.warps[slot].tb_slot;
                    match ev {
                        0 => {
                            let view = f.view();
                            policy.begin_cycle(&view);
                        }
                        1 => {
                            // barrier arrive
                            if !f.warps[slot].at_barrier && !f.warps[slot].finished {
                                f.warps[slot].at_barrier = true;
                                f.tbs[tb].warps_at_barrier += 1;
                                policy.on_barrier_arrive(slot, tb, &f.view());
                                // release if all parked
                                if f.tbs[tb].warps_at_barrier + f.tbs[tb].warps_finished
                                    == f.tbs[tb].num_warps
                                {
                                    for w in 0..f.warps.len() {
                                        if f.warps[w].tb_slot == tb {
                                            f.warps[w].at_barrier = false;
                                        }
                                    }
                                    f.tbs[tb].warps_at_barrier = 0;
                                    policy.on_barrier_release(tb, &f.view());
                                }
                            }
                        }
                        2 => {
                            // finish a warp
                            if !f.warps[slot].finished && !f.warps[slot].at_barrier {
                                f.warps[slot].finished = true;
                                f.tbs[tb].warps_finished += 1;
                                policy.on_warp_finish(slot, tb, &f.view());
                                if f.tbs[tb].warps_finished == f.tbs[tb].num_warps {
                                    policy.on_tb_finish(tb, &f.view());
                                    for w in 0..f.warps.len() {
                                        if f.warps[w].tb_slot == tb {
                                            f.warps[w] = WarpState::default();
                                        }
                                    }
                                    f.tbs[tb] = TbState::default();
                                }
                            }
                        }
                        3 => {
                            // issue event + progress bump
                            if !f.warps[slot].finished && f.warps[slot].active {
                                f.warps[slot].progress += 32;
                                f.tbs[tb].progress += 32;
                                policy.on_issue(
                                    (slot % 2) as u32,
                                    slot,
                                    IssueInfo {
                                        active_threads: 32,
                                        is_global_load: *x % 3 == 0,
                                    },
                                    &f.view(),
                                );
                            }
                        }
                        _ => {
                            f.cycle += 500;
                        }
                    }
                }
                // After any storm, ordering must still be a valid permutation.
                policy.begin_cycle(&f.view());
                let cands = f.live_slots();
                let mut out = Vec::new();
                policy.order(0, &f.view(), &cands, &mut out);
                let mut sorted = out.clone();
                sorted.sort_unstable();
                let mut expect = cands.clone();
                expect.sort_unstable();
                prop_assert_eq!(sorted, expect, "{}", kind.name());
            }
            Ok(())
        },
    );
}

#[test]
fn pro_priority_bands_hold() {
    check(Config::default(), arb_fixture(), |f0: &Fixture| {
        prop_assume!(f0.tbs.len() >= 3);
        prop_assume!(f0.fast);
        let mut f = f0.clone();
        let mut pro = Pro::new(f.warps.len(), f.tbs.len(), ProConfig::default());
        for t in 0..f.tbs.len() {
            pro.on_tb_launch(t, &f.view());
        }
        // TB0 → finishWait, TB1 → barrierWait, TB2.. stay noWait.
        let w0 = 0;
        f.warps[w0].finished = true;
        f.tbs[0].warps_finished = 1;
        pro.on_warp_finish(w0, 0, &f.view());
        let w1 = WARPS_PER_TB;
        f.warps[w1].at_barrier = true;
        f.tbs[1].warps_at_barrier = 1;
        pro.on_barrier_arrive(w1, 1, &f.view());
        pro.begin_cycle(&f.view());
        let cands = f.live_slots();
        let mut out = Vec::new();
        pro.order(0, &f.view(), &cands, &mut out);
        let band = |slot: WarpSlot| -> u8 {
            match f.warps[slot].tb_slot {
                0 => 0, // finishWait band
                1 => 1, // barrierWait band
                _ => 2, // noWait band
            }
        };
        // Bands must be non-decreasing through the ordered list.
        for pair in out.windows(2) {
            prop_assert!(
                band(pair[0]) <= band(pair[1]),
                "band inversion: {:?} (bands {} > {})",
                pair,
                band(pair[0]),
                band(pair[1])
            );
        }
        Ok(())
    });
}

#[test]
fn pro_trace_lists_each_live_tb_exactly_once() {
    check(Config::default(), arb_fixture(), |f: &Fixture| {
        let mut pro = Pro::new(f.warps.len(), f.tbs.len(), ProConfig::default());
        for t in 0..f.tbs.len() {
            pro.on_tb_launch(t, &f.view());
        }
        pro.begin_cycle(&f.view());
        let trace = pro.tb_priority_trace(&f.view()).unwrap();
        let mut sorted = trace.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..f.tbs.len() as u32).collect();
        prop_assert_eq!(sorted, expect);
        Ok(())
    });
}

/// Fig. 3 conformance: drive PRO with random (but protocol-legal) event
/// storms and assert every TB class change follows an edge of the paper's
/// state transition diagram.
mod fig3_conformance {
    use super::*;
    use pro_core::pro::TbClass;

    fn legal(from: TbClass, to: TbClass, fast: bool) -> bool {
        use TbClass::*;
        if from == to {
            return true;
        }
        match (from, to) {
            // Launch/retire edges.
            (Empty, NoWait) | (Empty, FinishNoWait) => true,
            (_, Empty) => true,
            (_, Finished) => true, // all-warps-finished is terminal from anywhere
            // Fast-phase edges.
            (NoWait, BarrierWait) => fast,
            (NoWait, FinishWait) => fast,
            (BarrierWait, NoWait) => fast,
            // Fast→slow merge edges.
            (NoWait, FinishNoWait) => !fast,
            (FinishWait, FinishNoWait) => !fast,
            (BarrierWait, BarrierWait1) => !fast,
            // Slow-phase edges.
            (FinishNoWait, BarrierWait1) => !fast,
            (BarrierWait1, FinishNoWait) => !fast,
            _ => false,
        }
    }

    #[test]
    fn class_changes_follow_the_diagram() {
        check(
            Config::default(),
            vec_of((0u8..4, 0usize..16, any::<bool>()), 0..64),
            |events: &Vec<(u8, usize, bool)>| {
                const NTBS: usize = 4;
                let mut f = Fixture {
                    warps: vec![WarpState::default(); NTBS * WARPS_PER_TB],
                    tbs: vec![TbState::default(); NTBS],
                    fast: true,
                    cycle: 0,
                };
                for t in 0..NTBS {
                    f.tbs[t] = TbState {
                        occupied: true,
                        global_index: t as u32,
                        progress: 0,
                        num_warps: WARPS_PER_TB as u32,
                        warps_at_barrier: 0,
                        warps_finished: 0,
                        launched_at: 0,
                    };
                    for w in 0..WARPS_PER_TB {
                        f.warps[t * WARPS_PER_TB + w] = WarpState {
                            active: true,
                            tb_slot: t,
                            index_in_tb: w as u32,
                            progress: 0,
                            at_barrier: false,
                            finished: false,
                            blocked_on_longlat: false,
                        };
                    }
                }
                let mut pro = Pro::new(f.warps.len(), NTBS, ProConfig::default());
                let mut classes = [TbClass::Empty; NTBS];
                for (t, c) in classes.iter_mut().enumerate() {
                    pro.on_tb_launch(t, &f.view());
                    let new = pro.tb_class(t);
                    prop_assert!(legal(*c, new, f.fast), "launch {:?} -> {:?}", *c, new);
                    *c = new;
                }
                let verify = |pro: &Pro, classes: &mut [TbClass; NTBS], fast: bool| {
                    for (t, c) in classes.iter_mut().enumerate() {
                        let new = pro.tb_class(t);
                        if !legal(*c, new, fast) {
                            return Err(format!("illegal {:?} -> {:?} (fast={fast})", *c, new));
                        }
                        *c = new;
                    }
                    Ok(())
                };
                for &(ev, x, phase_toggle) in events {
                    // Phase can only move fast → slow (TBs drain from the global
                    // scheduler); once slow it stays slow for this kernel. The
                    // SM contract guarantees begin_cycle observes the new phase
                    // before any event of that cycle is delivered.
                    if phase_toggle && f.fast {
                        f.fast = false;
                        pro.begin_cycle(&f.view());
                        if let Err(e) = verify(&pro, &mut classes, f.fast) {
                            prop_assert!(false, "at phase transition: {e}");
                        }
                    }
                    let slot = x % f.warps.len();
                    let tb = f.warps[slot].tb_slot;
                    if !f.tbs[tb].occupied {
                        continue;
                    }
                    match ev {
                        0 => {
                            f.cycle += 700;
                            pro.begin_cycle(&f.view());
                        }
                        1 => {
                            if !f.warps[slot].at_barrier && !f.warps[slot].finished {
                                f.warps[slot].at_barrier = true;
                                f.tbs[tb].warps_at_barrier += 1;
                                pro.on_barrier_arrive(slot, tb, &f.view());
                                if f.tbs[tb].warps_at_barrier + f.tbs[tb].warps_finished
                                    == f.tbs[tb].num_warps
                                {
                                    for w in 0..f.warps.len() {
                                        if f.warps[w].tb_slot == tb {
                                            f.warps[w].at_barrier = false;
                                        }
                                    }
                                    f.tbs[tb].warps_at_barrier = 0;
                                    pro.on_barrier_release(tb, &f.view());
                                }
                            }
                        }
                        2 => {
                            if !f.warps[slot].finished && !f.warps[slot].at_barrier {
                                f.warps[slot].finished = true;
                                f.tbs[tb].warps_finished += 1;
                                pro.on_warp_finish(slot, tb, &f.view());
                                if f.tbs[tb].warps_finished == f.tbs[tb].num_warps {
                                    prop_assert_eq!(pro.tb_class(tb), TbClass::Finished);
                                    pro.on_tb_finish(tb, &f.view());
                                    for w in 0..f.warps.len() {
                                        if f.warps[w].tb_slot == tb {
                                            f.warps[w] = WarpState::default();
                                        }
                                    }
                                    f.tbs[tb] = TbState::default();
                                } else if f.tbs[tb].warps_at_barrier > 0
                                    && f.tbs[tb].warps_at_barrier + f.tbs[tb].warps_finished
                                        == f.tbs[tb].num_warps
                                {
                                    for w in 0..f.warps.len() {
                                        if f.warps[w].tb_slot == tb {
                                            f.warps[w].at_barrier = false;
                                        }
                                    }
                                    f.tbs[tb].warps_at_barrier = 0;
                                    pro.on_barrier_release(tb, &f.view());
                                }
                            }
                        }
                        _ => {
                            if f.warps[slot].active && !f.warps[slot].finished {
                                f.warps[slot].progress += 32;
                                f.tbs[tb].progress += 32;
                            }
                        }
                    }
                    if let Err(e) = verify(&pro, &mut classes, f.fast) {
                        prop_assert!(false, "{e}");
                    }
                }
                Ok(())
            },
        );
    }
}
