//! Property-based tests of the calendar event queue: for arbitrary
//! interleavings of cycle advances and pushes — including far-future
//! latencies that exercise the overflow tier and the bucket-resize
//! trigger — the pop stream must be identical to the `BinaryHeap`
//! reference model the queue replaced, and the slab must never grow past
//! the live-event high-water mark. Runs on the in-repo `pro_core::prop`
//! harness.

use pro_core::calq::CalQueue;
use pro_core::prop::{check, one_of, select, vec_of, Config, Strategy, StrategyExt};
use pro_core::{prop_assert, prop_assert_eq};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One step of a queue workload, as seen by the cycle engine: either the
/// clock advances (and everything due is drained), or an event is
/// scheduled `latency` cycles into the future.
#[derive(Debug, Clone, Copy)]
enum Op {
    Advance(u64),
    Push(u64),
}

/// The exact structure the calendar queue replaced: a min-heap of
/// `(time, seq, pool_index)` keys over an append-only payload pool.
struct HeapRef {
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    pool: Vec<u64>,
    seq: u64,
}

impl HeapRef {
    fn new() -> Self {
        HeapRef {
            heap: BinaryHeap::new(),
            pool: Vec::new(),
            seq: 0,
        }
    }
    fn push(&mut self, time: u64, payload: u64) {
        let idx = self.pool.len();
        self.pool.push(payload);
        self.seq += 1;
        self.heap.push(Reverse((time, self.seq, idx)));
    }
    fn pop_due(&mut self, now: u64) -> Option<(u64, u64, u64)> {
        let &Reverse((t, s, idx)) = self.heap.peek()?;
        if t > now {
            return None;
        }
        self.heap.pop();
        Some((t, s, self.pool[idx]))
    }
}

/// A random workload: mostly near-future pushes (inside the default
/// wheel horizon), a far-future band that lands in the overflow tier and
/// — sustained — trips the resize high-water, and cycle advances that
/// drain whatever has come due.
fn arb_workload() -> impl Strategy<Value = (usize, Vec<Op>)> {
    (
        // Wheel sizes from degenerate (4 buckets: almost everything
        // overflows) to the production default.
        select(vec![4usize, 16, 64, 128]),
        vec_of(
            one_of(vec![
                (1u64..8).prop_map(Op::Advance).boxed(),
                (1u64..96).prop_map(Op::Push).boxed(),
                (96u64..1500).prop_map(Op::Push).boxed(),
            ]),
            1..320,
        ),
    )
}

/// Feed the same workload to both queues; every pop must match, and the
/// calendar queue's slab must stay bounded by the live high-water mark.
fn run_lockstep(buckets: usize, ops: &[Op]) -> Result<(), pro_core::prop::CaseError> {
    let mut cal: CalQueue<u64> = CalQueue::with_buckets(buckets);
    let mut heap = HeapRef::new();
    let mut now = 0u64;
    let mut id = 0u64;
    let mut max_time = 0u64;
    for &op in ops {
        match op {
            Op::Advance(d) => {
                now += d;
                loop {
                    let a = cal.pop_due(now);
                    let b = heap.pop_due(now);
                    prop_assert_eq!(a, b, "pop divergence at cycle {now}");
                    if a.is_none() {
                        break;
                    }
                }
            }
            Op::Push(lat) => {
                let t = now + lat;
                cal.push(t, id);
                heap.push(t, id);
                max_time = max_time.max(t);
                id += 1;
            }
        }
    }
    // Drain the tail: both queues must empty in the same order.
    let end = max_time + 1;
    loop {
        let a = cal.pop_due(end);
        let b = heap.pop_due(end);
        prop_assert_eq!(a, b, "tail divergence");
        if a.is_none() {
            break;
        }
    }
    prop_assert!(cal.is_empty());
    prop_assert!(
        cal.pool_slots() <= cal.live_hwm(),
        "slab {} slots exceeds live high-water {}",
        cal.pool_slots(),
        cal.live_hwm()
    );
    Ok(())
}

#[test]
fn prop_pop_stream_matches_heap_reference() {
    check(Config::default(), arb_workload(), |(buckets, ops)| {
        run_lockstep(*buckets, ops)
    });
}

/// Same property, but through a mid-workload snapshot round-trip: the
/// restored queue must continue the pop stream exactly where the live
/// one would have (restore re-packs the sorted pending list through the
/// overflow tier, so this pins the insert/migrate path too).
#[test]
fn prop_snapshot_restore_preserves_pop_stream() {
    use pro_core::codec::{Reader, Writer};
    check(Config::with_cases(128), arb_workload(), |(buckets, ops)| {
        let mut cal: CalQueue<u64> = CalQueue::with_buckets(*buckets);
        let mut heap = HeapRef::new();
        let mut now = 0u64;
        let mut id = 0u64;
        let mut max_time = 0u64;
        let half = ops.len() / 2;
        for (i, &op) in ops.iter().enumerate() {
            if i == half {
                let mut w = Writer::new();
                cal.save_snapshot(&mut w);
                let bytes = w.into_bytes();
                let mut restored: CalQueue<u64> = CalQueue::new();
                restored
                    .restore_snapshot(&mut Reader::new(&bytes))
                    .expect("round trip");
                prop_assert_eq!(restored.len(), cal.len());
                prop_assert_eq!(restored.seq(), cal.seq());
                cal = restored;
            }
            match op {
                Op::Advance(d) => {
                    now += d;
                    loop {
                        let a = cal.pop_due(now);
                        let b = heap.pop_due(now);
                        prop_assert_eq!(a, b, "pop divergence at cycle {now}");
                        if a.is_none() {
                            break;
                        }
                    }
                }
                Op::Push(lat) => {
                    let t = now + lat;
                    cal.push(t, id);
                    heap.push(t, id);
                    max_time = max_time.max(t);
                    id += 1;
                }
            }
        }
        let end = max_time + 1;
        loop {
            let a = cal.pop_due(end);
            let b = heap.pop_due(end);
            prop_assert_eq!(a, b, "tail divergence");
            if a.is_none() {
                break;
            }
        }
        Ok(())
    });
}
