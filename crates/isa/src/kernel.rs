//! Kernel launch descriptors: a [`Program`] plus its grid configuration and
//! parameter values — the equivalent of CUDA's `kernel<<<grid, block>>>(args)`.

use crate::program::Program;
use crate::WARP_SIZE;
use std::sync::Arc;

/// Flattened launch dimensions. The paper's workloads only need the total
/// counts, so grids/blocks are linearized (CUDA's 3-D indices flatten the
/// same way in hardware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim3 {
    /// X extent.
    pub x: u32,
    /// Y extent.
    pub y: u32,
    /// Z extent.
    pub z: u32,
}

impl Dim3 {
    /// 1-D dimension.
    pub fn linear(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }
    /// Total element count.
    pub fn count(&self) -> u32 {
        self.x * self.y * self.z
    }
}

/// Grid configuration for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid: Dim3,
    /// Number of threads per block.
    pub block: Dim3,
}

impl LaunchConfig {
    /// 1-D launch: `blocks` thread blocks of `threads` threads.
    pub fn linear(blocks: u32, threads: u32) -> Self {
        LaunchConfig {
            grid: Dim3::linear(blocks),
            block: Dim3::linear(threads),
        }
    }

    /// Total thread blocks.
    pub fn num_blocks(&self) -> u32 {
        self.grid.count()
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.count()
    }

    /// Warps per block (rounded up; a trailing partial warp has inactive
    /// lanes, as in CUDA).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block().div_ceil(WARP_SIZE as u32)
    }
}

/// A launchable kernel: program, launch configuration and parameter bank.
///
/// Parameters are 32-bit words; by convention the workloads pass global
/// buffer *base byte addresses* and scalar sizes, just as CUDA kernels
/// receive pointers and ints.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The program to execute (shared; many TBs run the same code).
    pub program: Arc<Program>,
    /// Grid/block configuration.
    pub launch: LaunchConfig,
    /// Kernel parameter words (constant bank).
    pub params: Vec<u32>,
}

impl Kernel {
    /// Construct a kernel launch.
    pub fn new(program: Program, launch: LaunchConfig, params: Vec<u32>) -> Self {
        Kernel {
            program: Arc::new(program),
            launch,
            params,
        }
    }

    /// Registers consumed by one thread block.
    pub fn regs_per_block(&self) -> u32 {
        self.program.regs as u32 * self.launch.threads_per_block()
    }

    /// Shared memory consumed by one thread block, bytes.
    pub fn shared_per_block(&self) -> u32 {
        self.program.shared_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Instr;

    fn prog(regs: u8, shared: u32) -> Program {
        Program::new("k", vec![Instr::Exit], regs, 1, shared).unwrap()
    }

    #[test]
    fn warps_per_block_rounds_up() {
        assert_eq!(LaunchConfig::linear(1, 32).warps_per_block(), 1);
        assert_eq!(LaunchConfig::linear(1, 33).warps_per_block(), 2);
        assert_eq!(LaunchConfig::linear(1, 256).warps_per_block(), 8);
        assert_eq!(LaunchConfig::linear(1, 1).warps_per_block(), 1);
    }

    #[test]
    fn resource_footprints() {
        let k = Kernel::new(prog(20, 4096), LaunchConfig::linear(10, 128), vec![]);
        assert_eq!(k.regs_per_block(), 2560);
        assert_eq!(k.shared_per_block(), 4096);
        assert_eq!(k.launch.num_blocks(), 10);
    }

    #[test]
    fn dim3_counts() {
        let d = Dim3 { x: 4, y: 3, z: 2 };
        assert_eq!(d.count(), 24);
        assert_eq!(Dim3::linear(7).count(), 7);
    }
}
