//! Scalar reference interpreter — an *independent* implementation of VPTX
//! semantics used as a differential oracle for the SIMT simulator.
//!
//! Where the SM executes warps in lockstep with a SIMT reconvergence stack,
//! this interpreter executes one thread at a time with ordinary scalar
//! control flow, pausing threads at barriers and resuming them when all
//! live threads of the block have arrived. For race-free kernels (ours by
//! construction) the two implementations must produce bit-identical global
//! memory — a strong cross-check that divergence handling, barrier
//! semantics and the functional units all agree.
//!
//! Atomics note: threads execute in ascending thread-id order between
//! barriers, so atomic *return values* are deterministic here but may
//! differ from the simulator's warp-issue order when multiple threads RMW
//! the same address. Kernels whose outputs depend on RMW return order are
//! outside the oracle's contract (none of the Table II re-creations or
//! `synth` kernels are).

use crate::exec::{eval_alu, eval_atom, eval_cmp, eval_sfu};
use crate::inst::{Instr, MemSpace, Pc, Special, Src};
use crate::kernel::Kernel;
use crate::WARP_SIZE;

/// Global memory access for the interpreter (implemented by the host's
/// memory type; `pro-isa` stays substrate-free).
pub trait MemoryBackend {
    /// Read the 32-bit word at byte address `addr`.
    fn read_global(&mut self, addr: u32) -> u32;
    /// Write the 32-bit word at byte address `addr`.
    fn write_global(&mut self, addr: u32, value: u32);
}

impl MemoryBackend for Vec<u32> {
    fn read_global(&mut self, addr: u32) -> u32 {
        self[(addr / 4) as usize]
    }
    fn write_global(&mut self, addr: u32, value: u32) {
        self[(addr / 4) as usize] = value;
    }
}

/// Interpreter failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A thread exceeded the per-thread step budget (runaway loop).
    StepLimit {
        /// Block index.
        block: u32,
        /// Thread index within the block.
        tid: u32,
    },
    /// Threads deadlocked at a barrier (some finished threads can never
    /// arrive and the remaining set never becomes complete).
    BarrierDeadlock {
        /// Block index.
        block: u32,
    },
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::StepLimit { block, tid } => {
                write!(f, "thread {tid} of block {block} exceeded the step limit")
            }
            InterpError::BarrierDeadlock { block } => {
                write!(f, "block {block} deadlocked at a barrier")
            }
        }
    }
}

impl std::error::Error for InterpError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Ready,
    AtBarrier,
    Done,
}

struct Thread {
    pc: Pc,
    regs: Vec<u32>,
    preds: Vec<bool>,
    state: ThreadState,
    steps: u64,
}

/// Execute a full kernel grid against `mem`, block by block, thread by
/// thread. `step_limit` bounds per-thread dynamic instructions.
pub fn run_kernel(
    kernel: &Kernel,
    mem: &mut dyn MemoryBackend,
    step_limit: u64,
) -> Result<(), InterpError> {
    let nctaid = kernel.launch.num_blocks();
    for block in 0..nctaid {
        run_block(kernel, block, mem, step_limit)?;
    }
    Ok(())
}

/// Execute one thread block.
pub fn run_block(
    kernel: &Kernel,
    block: u32,
    mem: &mut dyn MemoryBackend,
    step_limit: u64,
) -> Result<(), InterpError> {
    let program = &kernel.program;
    let ntid = kernel.launch.threads_per_block();
    let mut shared = vec![0u32; (program.shared_bytes / 4) as usize];
    let mut threads: Vec<Thread> = (0..ntid)
        .map(|_| Thread {
            pc: 0,
            regs: vec![0; program.regs as usize],
            preds: vec![false; program.preds as usize],
            state: ThreadState::Ready,
            steps: 0,
        })
        .collect();

    loop {
        let mut any_ran = false;
        for tid in 0..ntid {
            if threads[tid as usize].state != ThreadState::Ready {
                continue;
            }
            any_ran = true;
            run_thread(
                kernel,
                block,
                tid,
                &mut threads[tid as usize],
                mem,
                &mut shared,
                step_limit,
            )
            .map_err(|_| InterpError::StepLimit { block, tid })?;
        }
        let done = threads
            .iter()
            .filter(|t| t.state == ThreadState::Done)
            .count() as u32;
        if done == ntid {
            return Ok(());
        }
        let at_bar = threads
            .iter()
            .filter(|t| t.state == ThreadState::AtBarrier)
            .count() as u32;
        if done + at_bar == ntid {
            // Barrier satisfied by all live threads: release.
            for t in &mut threads {
                if t.state == ThreadState::AtBarrier {
                    t.state = ThreadState::Ready;
                }
            }
            continue;
        }
        if !any_ran {
            return Err(InterpError::BarrierDeadlock { block });
        }
    }
}

/// Run one thread until it parks at a barrier or exits.
#[allow(clippy::too_many_arguments)]
fn run_thread(
    kernel: &Kernel,
    block: u32,
    tid: u32,
    t: &mut Thread,
    mem: &mut dyn MemoryBackend,
    shared: &mut [u32],
    step_limit: u64,
) -> Result<(), ()> {
    let program = &kernel.program;
    let ntid = kernel.launch.threads_per_block();
    let nctaid = kernel.launch.num_blocks();
    let read = |t: &Thread, src: Src| -> u32 {
        match src {
            Src::Reg(r) => t.regs[r.0 as usize],
            Src::Imm(v) => v,
            Src::Param(i) => kernel.params[i as usize],
            Src::Special(s) => match s {
                Special::Tid => tid,
                Special::Ctaid => block,
                Special::NTid => ntid,
                Special::NCtaid => nctaid,
                Special::LaneId => tid % WARP_SIZE as u32,
                Special::WarpId => tid / WARP_SIZE as u32,
            },
        }
    };
    loop {
        t.steps += 1;
        if t.steps > step_limit {
            return Err(());
        }
        let instr = *program.fetch(t.pc);
        match instr {
            Instr::Alu { op, dst, a, b, c } => {
                let (av, bv, cv) = (read(t, a), read(t, b), read(t, c));
                t.regs[dst.0 as usize] = eval_alu(op, av, bv, cv);
                t.pc += 1;
            }
            Instr::SetP { cmp, ty, dst, a, b } => {
                let v = eval_cmp(cmp, ty, read(t, a), read(t, b));
                t.preds[dst.0 as usize] = v;
                t.pc += 1;
            }
            Instr::SelP { dst, a, b, pred } => {
                t.regs[dst.0 as usize] = if t.preds[pred.0 as usize] {
                    read(t, a)
                } else {
                    read(t, b)
                };
                t.pc += 1;
            }
            Instr::Sfu { op, dst, a } => {
                t.regs[dst.0 as usize] = eval_sfu(op, read(t, a));
                t.pc += 1;
            }
            Instr::Ld {
                space,
                dst,
                addr,
                offset,
            } => {
                let a = t.regs[addr.0 as usize].wrapping_add(offset as u32);
                t.regs[dst.0 as usize] = match space {
                    MemSpace::Global => mem.read_global(a),
                    MemSpace::Shared => shared[(a / 4) as usize],
                };
                t.pc += 1;
            }
            Instr::St {
                space,
                src,
                addr,
                offset,
            } => {
                let a = t.regs[addr.0 as usize].wrapping_add(offset as u32);
                let v = t.regs[src.0 as usize];
                match space {
                    MemSpace::Global => mem.write_global(a, v),
                    MemSpace::Shared => shared[(a / 4) as usize] = v,
                }
                t.pc += 1;
            }
            Instr::Atom { op, dst, addr, src } => {
                let a = t.regs[addr.0 as usize];
                let old = shared[(a / 4) as usize];
                let (new, ret) = eval_atom(op, old, t.regs[src.0 as usize]);
                shared[(a / 4) as usize] = new;
                t.regs[dst.0 as usize] = ret;
                t.pc += 1;
            }
            Instr::Bar { .. } => {
                t.pc += 1;
                t.state = ThreadState::AtBarrier;
                return Ok(());
            }
            Instr::Bra {
                guard,
                target,
                reconv: _,
            } => {
                let taken = match guard {
                    None => true,
                    Some(g) => t.preds[g.pred.0 as usize] == g.expect,
                };
                t.pc = if taken { target } else { t.pc + 1 };
            }
            Instr::Exit => {
                t.state = ThreadState::Done;
                return Ok(());
            }
            Instr::Nop => {
                t.pc += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{CmpOp, Ty};
    use crate::kernel::LaunchConfig;
    use crate::Kernel;

    fn mem(words: usize) -> Vec<u32> {
        vec![0u32; words]
    }

    #[test]
    fn straight_line_kernel_writes_tids() {
        let mut b = ProgramBuilder::new("t");
        let (g, a) = (b.reg(), b.reg());
        b.global_tid(g);
        b.imad(a, g, Src::Imm(4), Src::Param(0));
        b.st_global(g, a, 0);
        b.exit();
        let k = Kernel::new(b.build().unwrap(), LaunchConfig::linear(2, 64), vec![0]);
        let mut m = mem(128);
        run_kernel(&k, &mut m, 1000).unwrap();
        for (i, &v) in m.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }

    #[test]
    fn divergent_loops_per_thread() {
        // out[tid] = sum of 0..tid
        let mut b = ProgramBuilder::new("t");
        let (g, a, acc, i) = (b.reg(), b.reg(), b.reg(), b.reg());
        let p = b.pred();
        b.global_tid(g);
        b.mov(acc, Src::Imm(0));
        b.for_loop(i, Src::Imm(0), g, p, |b, i| {
            b.iadd(acc, acc, Src::Reg(i));
        });
        b.imad(a, g, Src::Imm(4), Src::Param(0));
        b.st_global(acc, a, 0);
        b.exit();
        let k = Kernel::new(b.build().unwrap(), LaunchConfig::linear(1, 32), vec![0]);
        let mut m = mem(32);
        run_kernel(&k, &mut m, 10_000).unwrap();
        for t in 0..32u32 {
            assert_eq!(m[t as usize], (0..t).sum::<u32>(), "tid {t}");
        }
    }

    #[test]
    fn barrier_exchange_between_threads() {
        // shared[tid] = tid*10; bar; out[tid] = shared[(tid+1)%64]
        let mut b = ProgramBuilder::new("t");
        let sh = b.shared_alloc(64 * 4);
        let (tid, a, v, idx) = (b.reg(), b.reg(), b.reg(), b.reg());
        let p = b.pred();
        b.mov(tid, Src::Special(Special::Tid));
        b.imul(v, tid, Src::Imm(10));
        b.imad(a, tid, Src::Imm(4), Src::Imm(sh));
        b.st_shared(v, a, 0);
        b.bar();
        b.iadd(idx, tid, Src::Imm(1));
        b.setp(CmpOp::Ge, Ty::U32, p, idx, Src::Imm(64));
        b.if_then(p, true, |b| {
            b.mov(idx, Src::Imm(0));
        });
        b.imad(a, idx, Src::Imm(4), Src::Imm(sh));
        b.ld_shared(v, a, 0);
        b.imad(a, tid, Src::Imm(4), Src::Param(0));
        b.st_global(v, a, 0);
        b.exit();
        let k = Kernel::new(b.build().unwrap(), LaunchConfig::linear(1, 64), vec![0]);
        let mut m = mem(64);
        run_kernel(&k, &mut m, 10_000).unwrap();
        for (t, &v) in m.iter().enumerate() {
            assert_eq!(v, (((t + 1) % 64) * 10) as u32, "tid {t}");
        }
    }

    #[test]
    fn early_exit_threads_release_barriers() {
        // warp 1 exits before the barrier; warp 0 must still pass it.
        let mut b = ProgramBuilder::new("t");
        let (wid, g, a) = (b.reg(), b.reg(), b.reg());
        let p = b.pred();
        b.mov(wid, Src::Special(Special::WarpId));
        b.setp(CmpOp::Eq, Ty::S32, p, wid, Src::Imm(0));
        b.if_then(p, true, |b| {
            b.bar();
        });
        b.global_tid(g);
        b.imad(a, g, Src::Imm(4), Src::Param(0));
        b.st_global(g, a, 0);
        b.exit();
        let k = Kernel::new(b.build().unwrap(), LaunchConfig::linear(1, 64), vec![0]);
        let mut m = mem(64);
        run_kernel(&k, &mut m, 10_000).unwrap();
        assert_eq!(m[63], 63);
    }

    #[test]
    fn step_limit_catches_runaway() {
        let mut b = ProgramBuilder::new("t");
        let top = b.new_label();
        let l = b.new_label();
        b.place(top);
        b.nop();
        b.place(l);
        b.bra(None, top, l);
        b.exit();
        let k = Kernel::new(b.build().unwrap(), LaunchConfig::linear(1, 32), vec![]);
        let mut m = mem(4);
        let err = run_kernel(&k, &mut m, 100).unwrap_err();
        assert!(matches!(err, InterpError::StepLimit { .. }));
    }

    #[test]
    fn atomics_accumulate_in_tid_order() {
        let mut b = ProgramBuilder::new("t");
        let sh = b.shared_alloc(4);
        let (a, one, old, tid, oa) = (b.reg(), b.reg(), b.reg(), b.reg(), b.reg());
        b.mov(a, Src::Imm(sh));
        b.mov(one, Src::Imm(1));
        b.atom_shared(crate::AtomOp::Add, old, a, one);
        b.bar();
        // thread 0 stores the total
        b.mov(tid, Src::Special(Special::Tid));
        let p = b.pred();
        b.setp(CmpOp::Eq, Ty::S32, p, tid, Src::Imm(0));
        b.if_then(p, true, |b| {
            b.ld_shared(old, a, 0);
            b.mov(oa, Src::Param(0));
            b.st_global(old, oa, 0);
        });
        b.exit();
        let k = Kernel::new(b.build().unwrap(), LaunchConfig::linear(1, 96), vec![0]);
        let mut m = mem(4);
        run_kernel(&k, &mut m, 10_000).unwrap();
        assert_eq!(m[0], 96);
    }
}
