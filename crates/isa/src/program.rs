//! Program container and static validation.

use crate::inst::{Instr, Pc};
use std::fmt;

/// A validated VPTX program: straight-line instruction array plus the static
/// resource footprint that determines SM residency (registers per thread and
/// shared memory per thread block), mirroring what NVCC reports for a CUDA
/// kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Kernel name (for traces and reports).
    pub name: String,
    /// The instruction stream; PC 0 is the entry point.
    pub instrs: Vec<Instr>,
    /// General-purpose registers per thread (`r0..r{regs-1}`).
    pub regs: u8,
    /// Predicate registers per thread.
    pub preds: u8,
    /// Shared memory per thread block, in bytes (word aligned).
    pub shared_bytes: u32,
}

/// Static validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// The instruction stream is empty.
    Empty,
    /// A register operand exceeds the declared register count.
    RegOutOfRange {
        /// Offending PC.
        pc: Pc,
        /// Register index used.
        reg: u8,
        /// Declared limit.
        limit: u8,
    },
    /// A predicate operand exceeds the declared predicate count.
    PredOutOfRange {
        /// Offending PC.
        pc: Pc,
        /// Predicate index used.
        pred: u8,
        /// Declared limit.
        limit: u8,
    },
    /// A branch target or reconvergence point is past the end of the program.
    BadBranch {
        /// Offending PC.
        pc: Pc,
        /// The out-of-range PC referenced.
        to: Pc,
    },
    /// The final instruction can fall through past the end of the program.
    NoTerminalExit,
    /// Shared memory footprint is not word aligned.
    MisalignedShared,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::RegOutOfRange { pc, reg, limit } => {
                write!(f, "pc {pc}: r{reg} out of range (program declares {limit} regs)")
            }
            ProgramError::PredOutOfRange { pc, pred, limit } => {
                write!(f, "pc {pc}: p{pred} out of range (program declares {limit} preds)")
            }
            ProgramError::BadBranch { pc, to } => {
                write!(f, "pc {pc}: branch/reconvergence target {to} out of range")
            }
            ProgramError::NoTerminalExit => {
                write!(f, "control can fall through the end of the program without exit")
            }
            ProgramError::MisalignedShared => write!(f, "shared_bytes must be a multiple of 4"),
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Build and validate a program.
    pub fn new(
        name: impl Into<String>,
        instrs: Vec<Instr>,
        regs: u8,
        preds: u8,
        shared_bytes: u32,
    ) -> Result<Self, ProgramError> {
        let p = Program {
            name: name.into(),
            instrs,
            regs,
            preds,
            shared_bytes,
        };
        p.validate()?;
        Ok(p)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Fetch the instruction at `pc`. Panics on out-of-range PC (validated
    /// programs never produce one).
    #[inline]
    pub fn fetch(&self, pc: Pc) -> &Instr {
        &self.instrs[pc as usize]
    }

    /// Check all static invariants. Called by [`Program::new`]; exposed for
    /// programs deserialized or assembled elsewhere.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        if !self.shared_bytes.is_multiple_of(4) {
            return Err(ProgramError::MisalignedShared);
        }
        let len = self.instrs.len() as Pc;
        for (i, ins) in self.instrs.iter().enumerate() {
            let pc = i as Pc;
            for r in ins.src_regs().chain(ins.dst_reg()) {
                if r.0 >= self.regs {
                    return Err(ProgramError::RegOutOfRange {
                        pc,
                        reg: r.0,
                        limit: self.regs,
                    });
                }
            }
            for p in ins.src_preds().chain(ins.dst_pred()) {
                if p.0 >= self.preds {
                    return Err(ProgramError::PredOutOfRange {
                        pc,
                        pred: p.0,
                        limit: self.preds,
                    });
                }
            }
            if let Instr::Bra { target, reconv, .. } = ins {
                // `reconv == len` is legal: it means "reconverge at program
                // end", used by trailing loops.
                if *target >= len || *reconv > len {
                    return Err(ProgramError::BadBranch {
                        pc,
                        to: (*target).max(*reconv),
                    });
                }
            }
        }
        // The last instruction must not fall through: it must be an exit or
        // an unconditional branch.
        match self.instrs.last().expect("non-empty") {
            Instr::Exit => {}
            Instr::Bra { guard: None, .. } => {}
            _ => return Err(ProgramError::NoTerminalExit),
        }
        Ok(())
    }

    /// Count instructions of each pipeline class — used by workload docs and
    /// sanity tests asserting a kernel's intended instruction mix.
    pub fn mix(&self) -> ProgramMix {
        let mut m = ProgramMix::default();
        for i in &self.instrs {
            match i {
                Instr::Ld { .. } | Instr::St { .. } | Instr::Atom { .. } => {
                    if i.is_global_mem() {
                        m.global_mem += 1;
                    } else {
                        m.shared_mem += 1;
                    }
                }
                Instr::Sfu { .. } => m.sfu += 1,
                Instr::Bar { .. } => m.barriers += 1,
                Instr::Bra { .. } | Instr::Exit => m.ctrl += 1,
                _ => m.alu += 1,
            }
        }
        m
    }

    /// Render the program as assembler text (re-parseable by [`crate::asm`]).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, ".kernel {}", self.name);
        let _ = writeln!(out, ".regs {}", self.regs);
        let _ = writeln!(out, ".preds {}", self.preds);
        let _ = writeln!(out, ".shared {}", self.shared_bytes);
        for (pc, ins) in self.instrs.iter().enumerate() {
            let _ = writeln!(out, "{pc:4}:  {ins}");
        }
        out
    }
}

/// Static instruction-mix summary for a [`Program`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramMix {
    /// ALU-class instruction count.
    pub alu: usize,
    /// SFU instruction count.
    pub sfu: usize,
    /// Global loads/stores.
    pub global_mem: usize,
    /// Shared loads/stores/atomics.
    pub shared_mem: usize,
    /// Barriers.
    pub barriers: usize,
    /// Branches and exits.
    pub ctrl: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, Guard, Pred, Reg, Src};

    fn exit_only() -> Vec<Instr> {
        vec![Instr::Exit]
    }

    #[test]
    fn minimal_program_validates() {
        let p = Program::new("t", exit_only(), 1, 1, 0).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            Program::new("t", vec![], 1, 1, 0).unwrap_err(),
            ProgramError::Empty
        );
    }

    #[test]
    fn reg_out_of_range_rejected() {
        let instrs = vec![
            Instr::Alu {
                op: AluOp::Mov,
                dst: Reg(4),
                a: Src::Imm(0),
                b: Src::Imm(0),
                c: Src::Imm(0),
            },
            Instr::Exit,
        ];
        let err = Program::new("t", instrs, 4, 1, 0).unwrap_err();
        assert!(matches!(err, ProgramError::RegOutOfRange { reg: 4, .. }));
    }

    #[test]
    fn pred_out_of_range_rejected() {
        let instrs = vec![
            Instr::Bra {
                guard: Some(Guard {
                    pred: Pred(2),
                    expect: true,
                }),
                target: 0,
                reconv: 1,
            },
            Instr::Exit,
        ];
        let err = Program::new("t", instrs, 1, 2, 0).unwrap_err();
        assert!(matches!(err, ProgramError::PredOutOfRange { pred: 2, .. }));
    }

    #[test]
    fn branch_out_of_range_rejected() {
        let instrs = vec![
            Instr::Bra {
                guard: None,
                target: 9,
                reconv: 1,
            },
            Instr::Exit,
        ];
        let err = Program::new("t", instrs, 1, 1, 0).unwrap_err();
        assert!(matches!(err, ProgramError::BadBranch { to: 9, .. }));
    }

    #[test]
    fn reconv_at_program_end_is_legal() {
        let instrs = vec![
            Instr::Nop,
            Instr::Bra {
                guard: None,
                target: 0,
                reconv: 3,
            },
            Instr::Exit,
        ];
        // reconv == len (3) is allowed
        Program::new("t", instrs, 1, 1, 0).unwrap();
    }

    #[test]
    fn fallthrough_end_rejected() {
        let instrs = vec![Instr::Nop];
        assert_eq!(
            Program::new("t", instrs, 1, 1, 0).unwrap_err(),
            ProgramError::NoTerminalExit
        );
    }

    #[test]
    fn misaligned_shared_rejected() {
        assert_eq!(
            Program::new("t", exit_only(), 1, 1, 6).unwrap_err(),
            ProgramError::MisalignedShared
        );
    }

    #[test]
    fn mix_counts_classes() {
        use crate::inst::MemSpace;
        let instrs = vec![
            Instr::Alu {
                op: AluOp::IAdd,
                dst: Reg(0),
                a: Src::Imm(1),
                b: Src::Imm(2),
                c: Src::Imm(0),
            },
            Instr::Ld {
                space: MemSpace::Global,
                dst: Reg(0),
                addr: Reg(0),
                offset: 0,
            },
            Instr::Bar { id: 0 },
            Instr::Exit,
        ];
        let p = Program::new("t", instrs, 1, 1, 0).unwrap();
        let m = p.mix();
        assert_eq!(m.alu, 1);
        assert_eq!(m.global_mem, 1);
        assert_eq!(m.barriers, 1);
        assert_eq!(m.ctrl, 1);
    }

    #[test]
    fn disassemble_contains_directives() {
        let p = Program::new("dis", exit_only(), 2, 1, 8).unwrap();
        let text = p.disassemble();
        assert!(text.contains(".kernel dis"));
        assert!(text.contains(".regs 2"));
        assert!(text.contains(".shared 8"));
        assert!(text.contains("exit"));
    }
}
