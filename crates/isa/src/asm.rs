//! Text assembler for VPTX.
//!
//! Lets examples and tests write kernels as plain text instead of builder
//! calls. The syntax mirrors the `Display` form of [`Instr`] plus labels:
//!
//! ```text
//! .kernel saxpy
//! .regs 8
//! .preds 1
//! .shared 0
//!     imad r0, %ctaid, %ntid, %tid
//!     imad r1, r0, 4, %param1
//!     ld.global r2, [r1+0]
//!     fmul r2, r2, %param0
//!     imad r3, r0, 4, %param2
//!     st.global [r3+0], r2
//!     exit
//! ```
//!
//! Branches accept label or numeric targets:
//! `@!p0 bra done, reconv=done` / `bra 3 (reconv 9)`.

use crate::inst::{
    AluOp, AtomOp, CmpOp, Guard, Instr, MemSpace, Pc, Pred, Reg, SfuOp, Special, Src, Ty,
};
use crate::program::{Program, ProgramError};
use std::collections::HashMap;
use std::fmt;

/// Assembly failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

impl From<ProgramError> for AsmError {
    fn from(e: ProgramError) -> Self {
        AsmError {
            line: 0,
            msg: format!("validation: {e}"),
        }
    }
}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

#[derive(Debug, Clone)]
enum Target {
    Label(String),
    Abs(Pc),
}

/// Assemble VPTX source text into a validated [`Program`].
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut name = String::from("anonymous");
    let mut regs: Option<u8> = None;
    let mut preds: Option<u8> = None;
    let mut shared: u32 = 0;
    let mut instrs: Vec<Instr> = Vec::new();
    let mut labels: HashMap<String, Pc> = HashMap::new();
    // (instr idx, line, target, reconv)
    let mut fixups: Vec<(usize, usize, Target, Target)> = Vec::new();
    let mut max_reg: u8 = 0;
    let mut max_pred: u8 = 0;

    for (lineno, raw) in src.lines().enumerate() {
        let line_no = lineno + 1;
        let mut line = raw;
        if let Some(i) = line.find(['#', ';']) {
            line = &line[..i];
        }
        // Strip an optional numeric "pc:" prefix produced by disassemble().
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".kernel") {
            name = rest.trim().to_string();
            continue;
        }
        if let Some(rest) = line.strip_prefix(".regs") {
            regs = Some(
                rest.trim()
                    .parse()
                    .map_err(|_| err(line_no, "bad .regs value"))?,
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix(".preds") {
            preds = Some(
                rest.trim()
                    .parse()
                    .map_err(|_| err(line_no, "bad .preds value"))?,
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix(".shared") {
            shared = rest
                .trim()
                .parse()
                .map_err(|_| err(line_no, "bad .shared value"))?;
            continue;
        }
        // Label definition: `ident:` possibly followed by an instruction.
        let mut text = line;
        while let Some(colon) = text.find(':') {
            let (head, tail) = text.split_at(colon);
            let head = head.trim();
            if head.chars().all(|c| c.is_ascii_digit()) {
                // numeric pc prefix from disassemble(): ignore
                text = tail[1..].trim();
                continue;
            }
            if head
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                && head.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            {
                if labels
                    .insert(head.to_string(), instrs.len() as Pc)
                    .is_some()
                {
                    return Err(err(line_no, format!("duplicate label `{head}`")));
                }
                text = tail[1..].trim();
            } else {
                break;
            }
        }
        if text.is_empty() {
            continue;
        }
        parse_instr(
            text, line_no, &mut instrs, &mut fixups, &mut max_reg, &mut max_pred,
        )?;
    }

    // Resolve branch fixups.
    let resolve = |t: &Target, line: usize| -> Result<Pc, AsmError> {
        match t {
            Target::Abs(p) => Ok(*p),
            Target::Label(l) => labels
                .get(l)
                .copied()
                .ok_or_else(|| err(line, format!("undefined label `{l}`"))),
        }
    };
    for (idx, line, t, r) in &fixups {
        let tpc = resolve(t, *line)?;
        let rpc = resolve(r, *line)?;
        if let Instr::Bra { target, reconv, .. } = &mut instrs[*idx] {
            *target = tpc;
            *reconv = rpc;
        }
    }

    let regs = regs.unwrap_or(max_reg.max(1));
    let preds = preds.unwrap_or(max_pred.max(1));
    Ok(Program::new(name, instrs, regs, preds, shared)?)
}

fn parse_src(tok: &str, line: usize, max_reg: &mut u8) -> Result<Src, AsmError> {
    let tok = tok.trim();
    if let Some(r) = tok.strip_prefix('r') {
        if let Ok(n) = r.parse::<u8>() {
            *max_reg = (*max_reg).max(n + 1);
            return Ok(Src::Reg(Reg(n)));
        }
    }
    match tok {
        "%tid" => return Ok(Src::Special(Special::Tid)),
        "%ctaid" => return Ok(Src::Special(Special::Ctaid)),
        "%ntid" => return Ok(Src::Special(Special::NTid)),
        "%nctaid" => return Ok(Src::Special(Special::NCtaid)),
        "%laneid" => return Ok(Src::Special(Special::LaneId)),
        "%warpid" => return Ok(Src::Special(Special::WarpId)),
        _ => {}
    }
    if let Some(p) = tok.strip_prefix("%param") {
        let n: u8 = p.parse().map_err(|_| err(line, "bad param index"))?;
        return Ok(Src::Param(n));
    }
    if let Some(h) = tok.strip_prefix("0x") {
        let v = u32::from_str_radix(h, 16).map_err(|_| err(line, "bad hex literal"))?;
        return Ok(Src::Imm(v));
    }
    if let Some(fl) = tok.strip_suffix('f') {
        let v: f32 = fl.parse().map_err(|_| err(line, "bad float literal"))?;
        return Ok(Src::imm_f32(v));
    }
    if let Ok(v) = tok.parse::<i64>() {
        return Ok(Src::Imm(v as u32));
    }
    Err(err(line, format!("unrecognized operand `{tok}`")))
}

fn parse_reg(tok: &str, line: usize, max_reg: &mut u8) -> Result<Reg, AsmError> {
    match parse_src(tok, line, max_reg)? {
        Src::Reg(r) => Ok(r),
        _ => Err(err(line, format!("expected register, got `{}`", tok.trim()))),
    }
}

fn parse_pred_tok(tok: &str, line: usize, max_pred: &mut u8) -> Result<Pred, AsmError> {
    let tok = tok.trim();
    if let Some(p) = tok.strip_prefix('p') {
        if let Ok(n) = p.parse::<u8>() {
            *max_pred = (*max_pred).max(n + 1);
            return Ok(Pred(n));
        }
    }
    Err(err(line, format!("expected predicate, got `{tok}`")))
}

/// Parse a `[rN+off]` / `[rN-off]` / `[rN]` memory operand.
fn parse_addr(tok: &str, line: usize, max_reg: &mut u8) -> Result<(Reg, i32), AsmError> {
    let tok = tok.trim();
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [addr], got `{tok}`")))?;
    let (reg_part, off) = if let Some(i) = inner.find(['+', '-']) {
        let sign = if inner.as_bytes()[i] == b'-' { -1i64 } else { 1 };
        let off: i64 = inner[i + 1..]
            .trim()
            .parse()
            .map_err(|_| err(line, "bad address offset"))?;
        (&inner[..i], (sign * off) as i32)
    } else {
        (inner, 0)
    };
    Ok((parse_reg(reg_part, line, max_reg)?, off))
}

#[allow(clippy::too_many_arguments)]
fn parse_instr(
    text: &str,
    line: usize,
    instrs: &mut Vec<Instr>,
    fixups: &mut Vec<(usize, usize, Target, Target)>,
    max_reg: &mut u8,
    max_pred: &mut u8,
) -> Result<(), AsmError> {
    let mut text = text.trim();
    // Optional guard: @p0 / @!p0
    let mut guard: Option<Guard> = None;
    if let Some(rest) = text.strip_prefix('@') {
        let (expect, rest) = match rest.strip_prefix('!') {
            Some(r) => (false, r),
            None => (true, rest),
        };
        let end = rest
            .find(char::is_whitespace)
            .ok_or_else(|| err(line, "guard with no instruction"))?;
        let p = parse_pred_tok(&rest[..end], line, max_pred)?;
        guard = Some(Guard { pred: p, expect });
        text = rest[end..].trim();
    }

    let (mn, rest) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        vec![]
    } else {
        split_operands(rest)
    };

    if guard.is_some() && mn != "bra" {
        return Err(err(line, "guards are only supported on `bra`"));
    }

    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mn}` expects {n} operands, got {}", ops.len()),
            ))
        }
    };

    let bin_alu = |op: AluOp,
                   ops: &[&str],
                   max_reg: &mut u8|
     -> Result<Instr, AsmError> {
        Ok(Instr::Alu {
            op,
            dst: parse_reg(ops[0], line, max_reg)?,
            a: parse_src(ops[1], line, max_reg)?,
            b: parse_src(ops[2], line, max_reg)?,
            c: Src::Imm(0),
        })
    };

    let ins: Instr = match mn {
        "iadd" | "isub" | "imul" | "imulhi" | "imin" | "imax" | "and" | "or" | "xor" | "shl"
        | "shr" | "sra" | "fadd" | "fsub" | "fmul" | "fmin" | "fmax" => {
            need(3)?;
            let op = match mn {
                "iadd" => AluOp::IAdd,
                "isub" => AluOp::ISub,
                "imul" => AluOp::IMul,
                "imulhi" => AluOp::IMulHi,
                "imin" => AluOp::IMin,
                "imax" => AluOp::IMax,
                "and" => AluOp::And,
                "or" => AluOp::Or,
                "xor" => AluOp::Xor,
                "shl" => AluOp::Shl,
                "shr" => AluOp::Shr,
                "sra" => AluOp::Sra,
                "fadd" => AluOp::FAdd,
                "fsub" => AluOp::FSub,
                "fmul" => AluOp::FMul,
                "fmin" => AluOp::FMin,
                _ => AluOp::FMax,
            };
            bin_alu(op, &ops, max_reg)?
        }
        "imad" | "ffma" => {
            need(4)?;
            Instr::Alu {
                op: if mn == "imad" { AluOp::IMad } else { AluOp::FFma },
                dst: parse_reg(ops[0], line, max_reg)?,
                a: parse_src(ops[1], line, max_reg)?,
                b: parse_src(ops[2], line, max_reg)?,
                c: parse_src(ops[3], line, max_reg)?,
            }
        }
        "mov" | "i2f" | "f2i" => {
            need(2)?;
            Instr::Alu {
                op: match mn {
                    "mov" => AluOp::Mov,
                    "i2f" => AluOp::I2F,
                    _ => AluOp::F2I,
                },
                dst: parse_reg(ops[0], line, max_reg)?,
                a: parse_src(ops[1], line, max_reg)?,
                b: Src::Imm(0),
                c: Src::Imm(0),
            }
        }
        "selp" => {
            need(4)?;
            Instr::SelP {
                dst: parse_reg(ops[0], line, max_reg)?,
                a: parse_src(ops[1], line, max_reg)?,
                b: parse_src(ops[2], line, max_reg)?,
                pred: parse_pred_tok(ops[3], line, max_pred)?,
            }
        }
        "rcp" | "rsqrt" | "sqrt" | "sin" | "cos" | "exp2" | "log2" => {
            need(2)?;
            Instr::Sfu {
                op: match mn {
                    "rcp" => SfuOp::Rcp,
                    "rsqrt" => SfuOp::Rsqrt,
                    "sqrt" => SfuOp::Sqrt,
                    "sin" => SfuOp::Sin,
                    "cos" => SfuOp::Cos,
                    "exp2" => SfuOp::Exp2,
                    _ => SfuOp::Log2,
                },
                dst: parse_reg(ops[0], line, max_reg)?,
                a: parse_src(ops[1], line, max_reg)?,
            }
        }
        "exit" => Instr::Exit,
        "nop" => Instr::Nop,
        "bra" => {
            if ops.is_empty() || ops.len() > 2 {
                return Err(err(line, "bra expects `target[, reconv=target]`"));
            }
            let parse_target = |t: &str| -> Target {
                let t = t.trim();
                match t.parse::<Pc>() {
                    Ok(pc) => Target::Abs(pc),
                    Err(_) => Target::Label(t.to_string()),
                }
            };
            let t = parse_target(ops[0]);
            let r = if ops.len() == 2 {
                let spec = ops[1].trim();
                let spec = spec.strip_prefix("reconv=").unwrap_or(spec);
                parse_target(spec)
            } else {
                t.clone()
            };
            let idx = instrs.len();
            fixups.push((idx, line, t, r));
            Instr::Bra {
                guard,
                target: 0,
                reconv: 0,
            }
        }
        _ if mn.starts_with("setp.") => {
            need(3)?;
            let mut parts = mn.split('.');
            parts.next(); // setp
            let cmp = match parts.next() {
                Some("eq") => CmpOp::Eq,
                Some("ne") => CmpOp::Ne,
                Some("lt") => CmpOp::Lt,
                Some("le") => CmpOp::Le,
                Some("gt") => CmpOp::Gt,
                Some("ge") => CmpOp::Ge,
                _ => return Err(err(line, "bad setp comparison")),
            };
            let ty = match parts.next() {
                Some("s32") => Ty::S32,
                Some("u32") => Ty::U32,
                Some("f32") => Ty::F32,
                _ => return Err(err(line, "bad setp type")),
            };
            Instr::SetP {
                cmp,
                ty,
                dst: parse_pred_tok(ops[0], line, max_pred)?,
                a: parse_src(ops[1], line, max_reg)?,
                b: parse_src(ops[2], line, max_reg)?,
            }
        }
        "ld.global" | "ld.shared" => {
            need(2)?;
            let (addr, offset) = parse_addr(ops[1], line, max_reg)?;
            Instr::Ld {
                space: if mn == "ld.global" {
                    MemSpace::Global
                } else {
                    MemSpace::Shared
                },
                dst: parse_reg(ops[0], line, max_reg)?,
                addr,
                offset,
            }
        }
        "st.global" | "st.shared" => {
            need(2)?;
            let (addr, offset) = parse_addr(ops[0], line, max_reg)?;
            Instr::St {
                space: if mn == "st.global" {
                    MemSpace::Global
                } else {
                    MemSpace::Shared
                },
                src: parse_reg(ops[1], line, max_reg)?,
                addr,
                offset,
            }
        }
        _ if mn.starts_with("atom.shared.") => {
            need(3)?;
            let op = match mn.rsplit('.').next() {
                Some("add") => AtomOp::Add,
                Some("max") => AtomOp::Max,
                Some("exch") => AtomOp::Exch,
                _ => return Err(err(line, "bad atomic op")),
            };
            let (addr, _off) = parse_addr(ops[1], line, max_reg)?;
            Instr::Atom {
                op,
                dst: parse_reg(ops[0], line, max_reg)?,
                addr,
                src: parse_reg(ops[2], line, max_reg)?,
            }
        }
        "bar.sync" => {
            need(1)?;
            let id: u8 = ops[0]
                .trim()
                .parse()
                .map_err(|_| err(line, "bad barrier id"))?;
            Instr::Bar { id }
        }
        _ => return Err(err(line, format!("unknown mnemonic `{mn}`"))),
    };
    instrs.push(ins);
    Ok(())
}

/// Split an operand list on commas, but not inside `[...]` or `(...)`.
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' | '(' => depth += 1,
            ']' | ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        // Strip a trailing `(reconv N)` annotation from Display output into
        // a second operand.
        if let Some(idx) = last.find("(reconv") {
            let (head, tail) = last.split_at(idx);
            out.push(head.trim());
            let inner = tail
                .trim_start_matches("(reconv")
                .trim_end_matches(')')
                .trim();
            out.push(inner);
        } else {
            out.push(last);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_saxpy() {
        let src = r#"
            .kernel saxpy
            .regs 8
            .preds 1
            imad r0, %ctaid, %ntid, %tid
            imad r1, r0, 4, %param1
            ld.global r2, [r1+0]
            fmul r2, r2, %param0
            imad r3, r0, 4, %param2
            st.global [r3+0], r2
            exit
        "#;
        let p = assemble(src).unwrap();
        assert_eq!(p.name, "saxpy");
        assert_eq!(p.len(), 7);
        assert_eq!(p.regs, 8);
        assert!(matches!(p.instrs[2], Instr::Ld { .. }));
    }

    #[test]
    fn labels_and_guarded_branches() {
        let src = r#"
            .kernel looptest
            mov r0, 0
            top:
            iadd r0, r0, 1
            setp.lt.s32 p0, r0, 10
            @p0 bra top, reconv=done
            done:
            exit
        "#;
        let p = assemble(src).unwrap();
        match p.instrs[3] {
            Instr::Bra {
                guard: Some(Guard { expect: true, .. }),
                target: 1,
                reconv: 4,
            } => {}
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn negated_guard() {
        let src = "@!p0 bra 0, reconv=1\nexit";
        let p = assemble(src).unwrap();
        match p.instrs[0] {
            Instr::Bra {
                guard: Some(Guard { expect: false, .. }),
                ..
            } => {}
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let e = assemble("bra nowhere\nexit").unwrap_err();
        assert!(e.msg.contains("undefined label"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble("a:\nnop\na:\nexit").unwrap_err();
        assert!(e.msg.contains("duplicate label"));
    }

    #[test]
    fn float_and_hex_immediates() {
        let p = assemble("mov r0, 1.5f\nmov r1, 0xff\nexit").unwrap();
        match p.instrs[0] {
            Instr::Alu { a: Src::Imm(v), .. } => assert_eq!(f32::from_bits(v), 1.5),
            ref other => panic!("{other}"),
        }
        match p.instrs[1] {
            Instr::Alu { a: Src::Imm(255), .. } => {}
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn negative_address_offsets() {
        let p = assemble("ld.shared r0, [r1-8]\nexit").unwrap();
        match p.instrs[0] {
            Instr::Ld { offset: -8, .. } => {}
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn atomics_and_barriers() {
        let p = assemble("atom.shared.add r0, [r1], r2\nbar.sync 0\nexit").unwrap();
        assert!(matches!(p.instrs[0], Instr::Atom { op: AtomOp::Add, .. }));
        assert!(matches!(p.instrs[1], Instr::Bar { id: 0 }));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble("# a comment\n  ; another\n\nexit").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn disassemble_roundtrips() {
        let src = r#"
            .kernel rt
            mov r0, 0
            top:
            iadd r0, r0, 1
            setp.lt.s32 p0, r0, 10
            @p0 bra top, reconv=done
            done:
            st.global [r1+4], r0
            exit
        "#;
        let p1 = assemble(src).unwrap();
        let text = p1.disassemble();
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.instrs, p2.instrs);
        assert_eq!(p1.regs, p2.regs);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("nop\nfrobnicate r0\nexit").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn guard_on_non_branch_is_an_error() {
        let e = assemble("@p0 iadd r0, r1, r2
exit").unwrap_err();
        assert!(e.msg.contains("only supported on `bra`"), "{e}");
    }

    #[test]
    fn wrong_operand_count_reports_mnemonic() {
        let e = assemble("iadd r0, r1
exit").unwrap_err();
        assert!(e.msg.contains("`iadd` expects 3 operands"), "{e}");
    }

    #[test]
    fn bad_setp_suffix_is_an_error() {
        assert!(assemble("setp.zz.s32 p0, r0, r1
exit").is_err());
        assert!(assemble("setp.lt.s99 p0, r0, r1
exit").is_err());
    }

    #[test]
    fn memory_operand_requires_brackets() {
        let e = assemble("ld.global r0, r1
exit").unwrap_err();
        assert!(e.msg.contains("expected [addr]"), "{e}");
    }

    #[test]
    fn derives_reg_counts_when_undeclared() {
        let p = assemble("mov r5, 1\nsetp.eq.s32 p2, r5, 1\nexit").unwrap();
        assert_eq!(p.regs, 6);
        assert_eq!(p.preds, 3);
    }
}
