//! Instruction representation for the VPTX ISA.
//!
//! The encoding is deliberately close to (a small subset of) PTX as used by
//! the paper's benchmarks: predicated branches with explicit reconvergence
//! points, typed compares into predicate registers, a handful of ALU ops,
//! SFU transcendentals, and loads/stores to the global / shared / parameter
//! spaces.

use std::fmt;

/// Program counter: an index into [`crate::Program::instrs`].
pub type Pc = u32;

/// A general-purpose 32-bit register index (`r0..r{regs-1}`, per thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// A 1-bit predicate register index (`p0..p{preds-1}`, per thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Read-only special values a thread can source without a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// Linear thread index within the thread block (`threadIdx` flattened).
    Tid,
    /// Linear thread block index within the grid (`blockIdx` flattened).
    Ctaid,
    /// Number of threads per block.
    NTid,
    /// Number of blocks in the grid.
    NCtaid,
    /// Lane index within the warp (0..32).
    LaneId,
    /// Warp index within the thread block.
    WarpId,
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Special::Tid => "%tid",
            Special::Ctaid => "%ctaid",
            Special::NTid => "%ntid",
            Special::NCtaid => "%nctaid",
            Special::LaneId => "%laneid",
            Special::WarpId => "%warpid",
        };
        f.write_str(s)
    }
}

/// A source operand: register, immediate, special value, or kernel parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// General-purpose register.
    Reg(Reg),
    /// 32-bit immediate (bit pattern; may hold an `f32`).
    Imm(u32),
    /// Hardware special value.
    Special(Special),
    /// Kernel parameter slot (free constant-bank read).
    Param(u8),
}

impl Src {
    /// Immediate from a signed integer.
    pub fn imm_i32(v: i32) -> Self {
        Src::Imm(v as u32)
    }
    /// Immediate from an `f32` bit pattern.
    pub fn imm_f32(v: f32) -> Self {
        Src::Imm(v.to_bits())
    }
    /// The register read by this operand, if any.
    pub fn reg(&self) -> Option<Reg> {
        match self {
            Src::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Self {
        Src::Reg(r)
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(v) => write!(f, "{}", *v as i32),
            Src::Special(s) => write!(f, "{s}"),
            Src::Param(i) => write!(f, "%param{i}"),
        }
    }
}

/// Scalar type interpretation for compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// Signed 32-bit integer.
    S32,
    /// Unsigned 32-bit integer.
    U32,
    /// IEEE-754 binary32.
    F32,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Ty::S32 => "s32",
            Ty::U32 => "u32",
            Ty::F32 => "f32",
        })
    }
}

/// Two- and three-operand arithmetic/logic operations (SP-unit class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `dst = a + b` (wrapping).
    IAdd,
    /// `dst = a - b` (wrapping).
    ISub,
    /// `dst = a * b` (low 32 bits).
    IMul,
    /// `dst = (a * b) >> 32` (signed high multiply).
    IMulHi,
    /// `dst = a * b + c` (wrapping multiply-add).
    IMad,
    /// `dst = min(a, b)` signed.
    IMin,
    /// `dst = max(a, b)` signed.
    IMax,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left by `b & 31`.
    Shl,
    /// Logical shift right by `b & 31`.
    Shr,
    /// Arithmetic shift right by `b & 31`.
    Sra,
    /// `dst = a` (register/imm/special move).
    Mov,
    /// `dst = a + b` on f32.
    FAdd,
    /// `dst = a - b` on f32.
    FSub,
    /// `dst = a * b` on f32.
    FMul,
    /// `dst = a * b + c` fused on f32.
    FFma,
    /// `dst = min(a, b)` on f32.
    FMin,
    /// `dst = max(a, b)` on f32.
    FMax,
    /// Convert s32 → f32.
    I2F,
    /// Convert f32 → s32 (truncating).
    F2I,
}

/// Comparison operators for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Special-function-unit operations (transcendentals; long latency, low
/// initiation rate — the Fermi SFU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuOp {
    /// Reciprocal 1/x.
    Rcp,
    /// Reciprocal square root.
    Rsqrt,
    /// Square root.
    Sqrt,
    /// Sine (argument in radians).
    Sin,
    /// Cosine.
    Cos,
    /// Base-2 exponential.
    Exp2,
    /// Base-2 logarithm.
    Log2,
}

/// Memory spaces addressable by loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device global memory (through L1/L2/DRAM).
    Global,
    /// Per-thread-block shared memory (on-chip, banked).
    Shared,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
        })
    }
}

/// Atomic read-modify-write operations on shared memory (used by the
/// histogram-style workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// `[addr] += src`, returns old value.
    Add,
    /// `[addr] = max([addr], src)` signed, returns old value.
    Max,
    /// `[addr] = src`, returns old value.
    Exch,
}

/// Predicate guard on an instruction: execute lane only when `pred` has the
/// value `expect` in that lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// Predicate register tested.
    pub pred: Pred,
    /// Expected value (`true` = `@p`, `false` = `@!p`).
    pub expect: bool,
}

/// One VPTX instruction.
///
/// Control transfer carries an explicit `reconv` PC — the immediate
/// post-dominator of the branch — which the SM's SIMT stack uses for
/// reconvergence, exactly as GPGPU-Sim derives from PTX analysis. The
/// [`crate::ProgramBuilder`] computes these automatically for structured
/// control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Three-source ALU op; `b`/`c` ignored by unary/binary ops.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Src,
        /// Second source (binary/ternary ops).
        b: Src,
        /// Third source (`IMad`/`FFma` only).
        c: Src,
    },
    /// Compare `a <cmp> b` under type `ty` into predicate `dst`.
    SetP {
        /// Comparison operator.
        cmp: CmpOp,
        /// Type interpretation of the operands.
        ty: Ty,
        /// Destination predicate.
        dst: Pred,
        /// Left operand.
        a: Src,
        /// Right operand.
        b: Src,
    },
    /// Select: `dst = pred ? a : b` per lane.
    SelP {
        /// Destination register.
        dst: Reg,
        /// Value when predicate is true.
        a: Src,
        /// Value when predicate is false.
        b: Src,
        /// Selecting predicate.
        pred: Pred,
    },
    /// Special-function op `dst = op(a)` (f32 in/out).
    Sfu {
        /// Operation.
        op: SfuOp,
        /// Destination register.
        dst: Reg,
        /// Argument.
        a: Src,
    },
    /// Load `dst = [addr + offset]` (32-bit word) from `space`.
    Ld {
        /// Memory space.
        space: MemSpace,
        /// Destination register.
        dst: Reg,
        /// Byte address register.
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
    },
    /// Store `[addr + offset] = src` (32-bit word) to `space`.
    St {
        /// Memory space.
        space: MemSpace,
        /// Value register.
        src: Reg,
        /// Byte address register.
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
    },
    /// Shared-memory atomic `dst = atom_op([addr], src)`.
    Atom {
        /// RMW operation.
        op: AtomOp,
        /// Receives the old value.
        dst: Reg,
        /// Byte address register (shared space).
        addr: Reg,
        /// RMW operand.
        src: Reg,
    },
    /// Thread-block-wide barrier (`bar.sync id`).
    Bar {
        /// Barrier resource id (Fermi has 16; our kernels use 0).
        id: u8,
    },
    /// Branch to `target`; optionally guarded. `reconv` is the immediate
    /// post-dominator where diverged lanes re-join.
    Bra {
        /// Predicate guard; `None` = unconditional.
        guard: Option<Guard>,
        /// Branch target PC.
        target: Pc,
        /// Reconvergence PC.
        reconv: Pc,
    },
    /// Thread exit (warp lane retires).
    Exit,
    /// No operation (occupies an issue slot; used for padding/latency tests).
    Nop,
}

impl Instr {
    /// The pipeline that serves this instruction.
    pub fn pipe_class(&self) -> crate::PipeClass {
        use crate::PipeClass;
        match self {
            Instr::Alu { .. } | Instr::SetP { .. } | Instr::SelP { .. } | Instr::Nop => {
                PipeClass::Alu
            }
            Instr::Sfu { .. } => PipeClass::Sfu,
            Instr::Ld { .. } | Instr::St { .. } | Instr::Atom { .. } => PipeClass::Mem,
            Instr::Bar { .. } | Instr::Bra { .. } | Instr::Exit => PipeClass::Ctrl,
        }
    }

    /// Destination general-purpose register written by this instruction.
    pub fn dst_reg(&self) -> Option<Reg> {
        match self {
            Instr::Alu { dst, .. }
            | Instr::SelP { dst, .. }
            | Instr::Sfu { dst, .. }
            | Instr::Ld { dst, .. }
            | Instr::Atom { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Destination predicate register, if any.
    pub fn dst_pred(&self) -> Option<Pred> {
        match self {
            Instr::SetP { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// All general-purpose registers read by this instruction.
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> {
        let mut out: [Option<Reg>; 3] = [None; 3];
        match self {
            Instr::Alu { a, b, c, .. } => {
                out = [a.reg(), b.reg(), c.reg()];
            }
            Instr::SetP { a, b, .. } => {
                out = [a.reg(), b.reg(), None];
            }
            Instr::SelP { a, b, .. } => {
                out = [a.reg(), b.reg(), None];
            }
            Instr::Sfu { a, .. } => {
                out = [a.reg(), None, None];
            }
            Instr::Ld { addr, .. } => {
                out = [Some(*addr), None, None];
            }
            Instr::St { src, addr, .. } => {
                out = [Some(*src), Some(*addr), None];
            }
            Instr::Atom { addr, src, .. } => {
                out = [Some(*addr), Some(*src), None];
            }
            _ => {}
        }
        out.into_iter().flatten()
    }

    /// Predicate registers read by this instruction (guards and selects).
    pub fn src_preds(&self) -> impl Iterator<Item = Pred> {
        let mut out: [Option<Pred>; 1] = [None];
        match self {
            Instr::SelP { pred, .. } => out = [Some(*pred)],
            Instr::Bra { guard, .. } => out = [guard.map(|g| g.pred)],
            _ => {}
        }
        out.into_iter().flatten()
    }

    /// True if this is a memory operation touching `MemSpace::Global`.
    pub fn is_global_mem(&self) -> bool {
        matches!(
            self,
            Instr::Ld {
                space: MemSpace::Global,
                ..
            } | Instr::St {
                space: MemSpace::Global,
                ..
            }
        )
    }

    /// Short mnemonic for display/tracing.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Alu { op, .. } => match op {
                AluOp::IAdd => "iadd",
                AluOp::ISub => "isub",
                AluOp::IMul => "imul",
                AluOp::IMulHi => "imulhi",
                AluOp::IMad => "imad",
                AluOp::IMin => "imin",
                AluOp::IMax => "imax",
                AluOp::And => "and",
                AluOp::Or => "or",
                AluOp::Xor => "xor",
                AluOp::Shl => "shl",
                AluOp::Shr => "shr",
                AluOp::Sra => "sra",
                AluOp::Mov => "mov",
                AluOp::FAdd => "fadd",
                AluOp::FSub => "fsub",
                AluOp::FMul => "fmul",
                AluOp::FFma => "ffma",
                AluOp::FMin => "fmin",
                AluOp::FMax => "fmax",
                AluOp::I2F => "i2f",
                AluOp::F2I => "f2i",
            },
            Instr::SetP { .. } => "setp",
            Instr::SelP { .. } => "selp",
            Instr::Sfu { op, .. } => match op {
                SfuOp::Rcp => "rcp",
                SfuOp::Rsqrt => "rsqrt",
                SfuOp::Sqrt => "sqrt",
                SfuOp::Sin => "sin",
                SfuOp::Cos => "cos",
                SfuOp::Exp2 => "exp2",
                SfuOp::Log2 => "log2",
            },
            Instr::Ld {
                space: MemSpace::Global,
                ..
            } => "ld.global",
            Instr::Ld {
                space: MemSpace::Shared,
                ..
            } => "ld.shared",
            Instr::St {
                space: MemSpace::Global,
                ..
            } => "st.global",
            Instr::St {
                space: MemSpace::Shared,
                ..
            } => "st.shared",
            Instr::Atom { .. } => "atom.shared",
            Instr::Bar { .. } => "bar.sync",
            Instr::Bra { .. } => "bra",
            Instr::Exit => "exit",
            Instr::Nop => "nop",
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { dst, a, b, c, op } => match op {
                AluOp::Mov | AluOp::I2F | AluOp::F2I => {
                    write!(f, "{} {dst}, {a}", self.mnemonic())
                }
                AluOp::IMad | AluOp::FFma => {
                    write!(f, "{} {dst}, {a}, {b}, {c}", self.mnemonic())
                }
                _ => write!(f, "{} {dst}, {a}, {b}", self.mnemonic()),
            },
            Instr::SetP { cmp, ty, dst, a, b } => {
                let c = match cmp {
                    CmpOp::Eq => "eq",
                    CmpOp::Ne => "ne",
                    CmpOp::Lt => "lt",
                    CmpOp::Le => "le",
                    CmpOp::Gt => "gt",
                    CmpOp::Ge => "ge",
                };
                write!(f, "setp.{c}.{ty} {dst}, {a}, {b}")
            }
            Instr::SelP { dst, a, b, pred } => write!(f, "selp {dst}, {a}, {b}, {pred}"),
            Instr::Sfu { dst, a, .. } => write!(f, "{} {dst}, {a}", self.mnemonic()),
            Instr::Ld { dst, addr, offset, .. } => {
                write!(f, "{} {dst}, [{addr}{offset:+}]", self.mnemonic())
            }
            Instr::St { src, addr, offset, .. } => {
                write!(f, "{} [{addr}{offset:+}], {src}", self.mnemonic())
            }
            Instr::Atom { op, dst, addr, src } => {
                let o = match op {
                    AtomOp::Add => "add",
                    AtomOp::Max => "max",
                    AtomOp::Exch => "exch",
                };
                write!(f, "atom.shared.{o} {dst}, [{addr}], {src}")
            }
            Instr::Bar { id } => write!(f, "bar.sync {id}"),
            Instr::Bra {
                guard,
                target,
                reconv,
            } => {
                if let Some(g) = guard {
                    let bang = if g.expect { "" } else { "!" };
                    write!(f, "@{bang}{} bra {target} (reconv {reconv})", g.pred)
                } else {
                    write!(f, "bra {target} (reconv {reconv})")
                }
            }
            Instr::Exit => f.write_str("exit"),
            Instr::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_and_src_regs_are_reported() {
        let i = Instr::Alu {
            op: AluOp::IMad,
            dst: Reg(3),
            a: Src::Reg(Reg(1)),
            b: Src::Imm(7),
            c: Src::Reg(Reg(2)),
        };
        assert_eq!(i.dst_reg(), Some(Reg(3)));
        let srcs: Vec<_> = i.src_regs().collect();
        assert_eq!(srcs, vec![Reg(1), Reg(2)]);
        assert_eq!(i.dst_pred(), None);
    }

    #[test]
    fn store_reads_both_registers_writes_none() {
        let i = Instr::St {
            space: MemSpace::Global,
            src: Reg(5),
            addr: Reg(6),
            offset: 4,
        };
        assert_eq!(i.dst_reg(), None);
        let srcs: Vec<_> = i.src_regs().collect();
        assert_eq!(srcs, vec![Reg(5), Reg(6)]);
    }

    #[test]
    fn pipe_classes_route_correctly() {
        use crate::PipeClass;
        assert_eq!(
            Instr::Sfu {
                op: SfuOp::Sin,
                dst: Reg(0),
                a: Src::Reg(Reg(1))
            }
            .pipe_class(),
            PipeClass::Sfu
        );
        assert_eq!(Instr::Bar { id: 0 }.pipe_class(), PipeClass::Ctrl);
        assert_eq!(
            Instr::Ld {
                space: MemSpace::Shared,
                dst: Reg(0),
                addr: Reg(1),
                offset: 0
            }
            .pipe_class(),
            PipeClass::Mem
        );
        assert_eq!(Instr::Nop.pipe_class(), PipeClass::Alu);
    }

    #[test]
    fn guard_predicates_are_source_preds() {
        let i = Instr::Bra {
            guard: Some(Guard {
                pred: Pred(1),
                expect: false,
            }),
            target: 0,
            reconv: 2,
        };
        let preds: Vec<_> = i.src_preds().collect();
        assert_eq!(preds, vec![Pred(1)]);
    }

    #[test]
    fn display_is_readable() {
        let i = Instr::Ld {
            space: MemSpace::Global,
            dst: Reg(2),
            addr: Reg(4),
            offset: -8,
        };
        assert_eq!(format!("{i}"), "ld.global r2, [r4-8]");
        let b = Instr::Bra {
            guard: Some(Guard {
                pred: Pred(0),
                expect: true,
            }),
            target: 3,
            reconv: 9,
        };
        assert_eq!(format!("{b}"), "@p0 bra 3 (reconv 9)");
    }
}
