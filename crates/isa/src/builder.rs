//! Structured program builder.
//!
//! Workload kernels are written against this builder rather than raw
//! instruction vectors: it allocates registers, resolves labels, and — most
//! importantly — emits the correct SIMT *reconvergence PCs* for structured
//! control flow (`if`, `if/else`, `while`, `do-while`), the same points a
//! PTX post-dominator analysis would find. Divergence behaviour in the SM
//! model therefore matches what GPGPU-Sim reconstructs for real kernels.

use crate::inst::{
    AluOp, AtomOp, CmpOp, Guard, Instr, MemSpace, Pc, Pred, Reg, SfuOp, Special, Src, Ty,
};
use crate::program::{Program, ProgramError};

/// An unresolved jump target. Create with [`ProgramBuilder::new_label`], bind
/// with [`ProgramBuilder::place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum PatchKind {
    Target,
    Reconv,
    Both,
}

/// Incremental builder for [`Program`]s.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    instrs: Vec<Instr>,
    labels: Vec<Option<Pc>>,
    // (instr index, label, which field(s) to patch)
    patches: Vec<(usize, Label, PatchKind)>,
    next_reg: u8,
    next_pred: u8,
    max_reg: u8,
    max_pred: u8,
    shared_bytes: u32,
}

impl ProgramBuilder {
    /// Start a new program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            instrs: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
            next_reg: 0,
            next_pred: 0,
            max_reg: 0,
            max_pred: 0,
            shared_bytes: 0,
        }
    }

    /// Allocate a fresh general-purpose register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        r
    }

    /// Allocate a fresh predicate register.
    pub fn pred(&mut self) -> Pred {
        let p = Pred(self.next_pred);
        self.next_pred += 1;
        self.max_pred = self.max_pred.max(self.next_pred);
        p
    }

    /// Declare a total register footprint of at least `total` GPRs per
    /// thread, even if the program body uses fewer. Mirrors the register
    /// pressure a real compiler's allocation produces (live ranges,
    /// spill-avoidance): on Fermi the register file, not the code, often
    /// bounds how many thread blocks are resident — the paper's §II.C
    /// effect. No-op if the body already uses more.
    pub fn reserve_regs(&mut self, total: u8) {
        self.max_reg = self.max_reg.max(total);
    }

    /// Declare `bytes` of shared memory (cumulative; returns the byte offset
    /// of the newly declared region, for address arithmetic).
    pub fn shared_alloc(&mut self, bytes: u32) -> u32 {
        let off = self.shared_bytes;
        self.shared_bytes += bytes.div_ceil(4) * 4;
        off
    }

    /// Current PC (index of the next emitted instruction).
    pub fn here(&self) -> Pc {
        self.instrs.len() as Pc
    }

    /// Create an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current PC.
    pub fn place(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Append a raw instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    // ---- ALU convenience ----------------------------------------------

    /// Generic ALU emit.
    pub fn alu(
        &mut self,
        op: AluOp,
        dst: Reg,
        a: impl Into<Src>,
        b: impl Into<Src>,
        c: impl Into<Src>,
    ) -> &mut Self {
        self.emit(Instr::Alu {
            op,
            dst,
            a: a.into(),
            b: b.into(),
            c: c.into(),
        })
    }

    /// `dst = a` (move).
    pub fn mov(&mut self, dst: Reg, a: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::Mov, dst, a, Src::Imm(0), Src::Imm(0))
    }

    /// `dst = a + b` (integer).
    pub fn iadd(&mut self, dst: Reg, a: impl Into<Src>, b: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::IAdd, dst, a, b, Src::Imm(0))
    }

    /// `dst = a - b` (integer).
    pub fn isub(&mut self, dst: Reg, a: impl Into<Src>, b: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::ISub, dst, a, b, Src::Imm(0))
    }

    /// `dst = a * b` (integer, low 32 bits).
    pub fn imul(&mut self, dst: Reg, a: impl Into<Src>, b: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::IMul, dst, a, b, Src::Imm(0))
    }

    /// `dst = a * b + c` (integer).
    pub fn imad(
        &mut self,
        dst: Reg,
        a: impl Into<Src>,
        b: impl Into<Src>,
        c: impl Into<Src>,
    ) -> &mut Self {
        self.alu(AluOp::IMad, dst, a, b, c)
    }

    /// `dst = a & b`.
    pub fn and(&mut self, dst: Reg, a: impl Into<Src>, b: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::And, dst, a, b, Src::Imm(0))
    }

    /// `dst = a ^ b`.
    pub fn xor(&mut self, dst: Reg, a: impl Into<Src>, b: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::Xor, dst, a, b, Src::Imm(0))
    }

    /// `dst = a | b`.
    pub fn or(&mut self, dst: Reg, a: impl Into<Src>, b: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::Or, dst, a, b, Src::Imm(0))
    }

    /// `dst = a << (b & 31)`.
    pub fn shl(&mut self, dst: Reg, a: impl Into<Src>, b: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::Shl, dst, a, b, Src::Imm(0))
    }

    /// `dst = a >> (b & 31)` logical.
    pub fn shr(&mut self, dst: Reg, a: impl Into<Src>, b: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::Shr, dst, a, b, Src::Imm(0))
    }

    /// `dst = a + b` (f32).
    pub fn fadd(&mut self, dst: Reg, a: impl Into<Src>, b: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::FAdd, dst, a, b, Src::Imm(0))
    }

    /// `dst = a * b` (f32).
    pub fn fmul(&mut self, dst: Reg, a: impl Into<Src>, b: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::FMul, dst, a, b, Src::Imm(0))
    }

    /// `dst = a * b + c` (f32 fused).
    pub fn ffma(
        &mut self,
        dst: Reg,
        a: impl Into<Src>,
        b: impl Into<Src>,
        c: impl Into<Src>,
    ) -> &mut Self {
        self.alu(AluOp::FFma, dst, a, b, c)
    }

    /// Convert s32 → f32.
    pub fn i2f(&mut self, dst: Reg, a: impl Into<Src>) -> &mut Self {
        self.alu(AluOp::I2F, dst, a, Src::Imm(0), Src::Imm(0))
    }

    /// `dst = cmp(a, b)` into a predicate.
    pub fn setp(
        &mut self,
        cmp: CmpOp,
        ty: Ty,
        dst: Pred,
        a: impl Into<Src>,
        b: impl Into<Src>,
    ) -> &mut Self {
        self.emit(Instr::SetP {
            cmp,
            ty,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// `dst = pred ? a : b`.
    pub fn selp(
        &mut self,
        dst: Reg,
        a: impl Into<Src>,
        b: impl Into<Src>,
        pred: Pred,
    ) -> &mut Self {
        self.emit(Instr::SelP {
            dst,
            a: a.into(),
            b: b.into(),
            pred,
        })
    }

    /// Special-function op.
    pub fn sfu(&mut self, op: SfuOp, dst: Reg, a: impl Into<Src>) -> &mut Self {
        self.emit(Instr::Sfu {
            op,
            dst,
            a: a.into(),
        })
    }

    // ---- memory ---------------------------------------------------------

    /// `dst = global[addr + offset]`.
    pub fn ld_global(&mut self, dst: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Ld {
            space: MemSpace::Global,
            dst,
            addr,
            offset,
        })
    }

    /// `global[addr + offset] = src`.
    pub fn st_global(&mut self, src: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::St {
            space: MemSpace::Global,
            src,
            addr,
            offset,
        })
    }

    /// `dst = shared[addr + offset]`.
    pub fn ld_shared(&mut self, dst: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Ld {
            space: MemSpace::Shared,
            dst,
            addr,
            offset,
        })
    }

    /// `shared[addr + offset] = src`.
    pub fn st_shared(&mut self, src: Reg, addr: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::St {
            space: MemSpace::Shared,
            src,
            addr,
            offset,
        })
    }

    /// Shared-memory atomic RMW.
    pub fn atom_shared(&mut self, op: AtomOp, dst: Reg, addr: Reg, src: Reg) -> &mut Self {
        self.emit(Instr::Atom { op, dst, addr, src })
    }

    /// Thread-block barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.emit(Instr::Bar { id: 0 })
    }

    /// Thread exit.
    pub fn exit(&mut self) -> &mut Self {
        self.emit(Instr::Exit)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    // ---- control flow ----------------------------------------------------

    /// Raw branch to a label. `reconv` defaults to the label for forward
    /// unconditional jumps; for guarded branches use the structured helpers
    /// unless you know the post-dominator.
    pub fn bra(&mut self, guard: Option<Guard>, target: Label, reconv: Label) -> &mut Self {
        let idx = self.instrs.len();
        self.instrs.push(Instr::Bra {
            guard,
            target: 0,
            reconv: 0,
        });
        self.patches.push((idx, target, PatchKind::Target));
        self.patches.push((idx, reconv, PatchKind::Reconv));
        self
    }

    /// Structured `if`: executes `body` for lanes where `pred == expect`.
    /// Reconvergence at the instruction following the body.
    pub fn if_then(
        &mut self,
        pred: Pred,
        expect: bool,
        body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let end = self.new_label();
        // Skip body when the guard FAILS.
        let idx = self.instrs.len();
        self.instrs.push(Instr::Bra {
            guard: Some(Guard {
                pred,
                expect: !expect,
            }),
            target: 0,
            reconv: 0,
        });
        self.patches.push((idx, end, PatchKind::Both));
        body(self);
        self.place(end);
        self
    }

    /// Structured `if/else` with reconvergence after both arms.
    pub fn if_else(
        &mut self,
        pred: Pred,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let else_l = self.new_label();
        let end = self.new_label();
        // @!p → else; reconv at end.
        let idx = self.instrs.len();
        self.instrs.push(Instr::Bra {
            guard: Some(Guard {
                pred,
                expect: false,
            }),
            target: 0,
            reconv: 0,
        });
        self.patches.push((idx, else_l, PatchKind::Target));
        self.patches.push((idx, end, PatchKind::Reconv));
        then_body(self);
        // jump over else; already-converged lanes only.
        let idx2 = self.instrs.len();
        self.instrs.push(Instr::Bra {
            guard: None,
            target: 0,
            reconv: 0,
        });
        self.patches.push((idx2, end, PatchKind::Both));
        self.place(else_l);
        else_body(self);
        self.place(end);
        self
    }

    /// Structured do-while loop: `body` runs at least once; after the body,
    /// `cond(self, pred)` must set `pred`; lanes loop while `pred == true`.
    /// Reconvergence at loop exit. This is the canonical shape NVCC emits for
    /// counted loops and the main source of *divergent loop exits* (warp-level
    /// divergence) in our workloads.
    pub fn do_while(
        &mut self,
        pred: Pred,
        body: impl FnOnce(&mut Self),
        cond: impl FnOnce(&mut Self, Pred),
    ) -> &mut Self {
        let top = self.new_label();
        let exit = self.new_label();
        self.place(top);
        body(self);
        cond(self, pred);
        let idx = self.instrs.len();
        self.instrs.push(Instr::Bra {
            guard: Some(Guard { pred, expect: true }),
            target: 0,
            reconv: 0,
        });
        self.patches.push((idx, top, PatchKind::Target));
        self.patches.push((idx, exit, PatchKind::Reconv));
        self.place(exit);
        self
    }

    /// Counted loop helper: `for i in start..bound { body }` using `counter`
    /// as the induction register. `bound` may differ per thread (divergence).
    pub fn for_loop(
        &mut self,
        counter: Reg,
        start: impl Into<Src>,
        bound: impl Into<Src>,
        pred: Pred,
        body: impl FnOnce(&mut Self, Reg),
    ) -> &mut Self {
        let bound = bound.into();
        self.mov(counter, start);
        // Guard zero-trip loops: skip entirely if start >= bound.
        self.setp(CmpOp::Lt, Ty::S32, pred, counter, bound);
        let skip = self.new_label();
        let idx = self.instrs.len();
        self.instrs.push(Instr::Bra {
            guard: Some(Guard {
                pred,
                expect: false,
            }),
            target: 0,
            reconv: 0,
        });
        self.patches.push((idx, skip, PatchKind::Both));
        self.do_while(
            pred,
            |b| {
                body(b, counter);
                b.iadd(counter, counter, Src::imm_i32(1));
            },
            |b, p| {
                b.setp(CmpOp::Lt, Ty::S32, p, counter, bound);
            },
        );
        self.place(skip);
        self
    }

    // ---- common idioms -----------------------------------------------

    /// `dst = ctaid * ntid + tid` — the global linear thread index.
    pub fn global_tid(&mut self, dst: Reg) -> &mut Self {
        self.alu(
            AluOp::IMad,
            dst,
            Src::Special(Special::Ctaid),
            Src::Special(Special::NTid),
            Src::Special(Special::Tid),
        )
    }

    /// `dst = param[slot] + index*4 + byte_offset` — address of the
    /// `index`-th 32-bit element of the buffer whose base address is kernel
    /// parameter `slot`.
    pub fn buf_addr(&mut self, dst: Reg, slot: u8, index: Reg, byte_offset: i32) -> &mut Self {
        self.imad(dst, index, Src::imm_i32(4), Src::Param(slot));
        if byte_offset != 0 {
            self.iadd(dst, dst, Src::imm_i32(byte_offset));
        }
        self
    }

    /// Finalize: resolve labels, validate, produce the [`Program`].
    pub fn build(mut self) -> Result<Program, ProgramError> {
        for (idx, label, kind) in std::mem::take(&mut self.patches) {
            let pc = self.labels[label.0].expect("unplaced label at build()");
            if let Instr::Bra { target, reconv, .. } = &mut self.instrs[idx] {
                match kind {
                    PatchKind::Target => *target = pc,
                    PatchKind::Reconv => *reconv = pc,
                    PatchKind::Both => {
                        *target = pc;
                        *reconv = pc;
                    }
                }
            } else {
                unreachable!("patch entry for non-branch instruction");
            }
        }
        Program::new(
            self.name,
            self.instrs,
            self.max_reg.max(1),
            self.max_pred.max(1),
            self.shared_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_allocate_sequentially() {
        let mut b = ProgramBuilder::new("t");
        assert_eq!(b.reg(), Reg(0));
        assert_eq!(b.reg(), Reg(1));
        assert_eq!(b.pred(), Pred(0));
    }

    #[test]
    fn shared_alloc_aligns_and_accumulates() {
        let mut b = ProgramBuilder::new("t");
        assert_eq!(b.shared_alloc(6), 0);
        assert_eq!(b.shared_alloc(4), 8); // 6 rounded to 8
        b.exit();
        let p = b.build().unwrap();
        assert_eq!(p.shared_bytes, 12);
    }

    #[test]
    fn if_then_emits_inverted_guard_and_reconv() {
        let mut b = ProgramBuilder::new("t");
        let r = b.reg();
        let p = b.pred();
        b.setp(CmpOp::Lt, Ty::S32, p, Src::Special(Special::Tid), Src::Imm(16));
        b.if_then(p, true, |b| {
            b.iadd(r, r, Src::Imm(1));
        });
        b.exit();
        let prog = b.build().unwrap();
        // pc1 = branch skipping the body when p is FALSE, to pc3, reconv pc3.
        match prog.instrs[1] {
            Instr::Bra {
                guard: Some(Guard { pred, expect }),
                target,
                reconv,
            } => {
                assert_eq!(pred, p);
                assert!(!expect);
                assert_eq!(target, 3);
                assert_eq!(reconv, 3);
            }
            ref other => panic!("expected guarded bra, got {other}"),
        }
    }

    #[test]
    fn if_else_reconverges_after_both_arms() {
        let mut b = ProgramBuilder::new("t");
        let r = b.reg();
        let p = b.pred();
        b.setp(CmpOp::Eq, Ty::S32, p, Src::Imm(0), Src::Imm(0));
        b.if_else(
            p,
            |b| {
                b.mov(r, Src::Imm(1));
            },
            |b| {
                b.mov(r, Src::Imm(2));
            },
        );
        b.exit();
        let prog = b.build().unwrap();
        // Layout: 0 setp, 1 bra(!p→4, reconv 5), 2 mov, 3 bra(5,5), 4 mov, 5 exit
        match prog.instrs[1] {
            Instr::Bra { target, reconv, .. } => {
                assert_eq!(target, 4);
                assert_eq!(reconv, 5);
            }
            ref other => panic!("{other}"),
        }
        match prog.instrs[3] {
            Instr::Bra { target, reconv, guard } => {
                assert!(guard.is_none());
                assert_eq!(target, 5);
                assert_eq!(reconv, 5);
            }
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn do_while_backward_branch_reconverges_at_exit() {
        let mut b = ProgramBuilder::new("t");
        let i = b.reg();
        let p = b.pred();
        b.mov(i, Src::Imm(0));
        b.do_while(
            p,
            |b| {
                b.iadd(i, i, Src::Imm(1));
            },
            |b, p| {
                b.setp(CmpOp::Lt, Ty::S32, p, i, Src::Imm(10));
            },
        );
        b.exit();
        let prog = b.build().unwrap();
        // 0 mov, 1 iadd (loop top), 2 setp, 3 bra(@p → 1, reconv 4), 4 exit
        match prog.instrs[3] {
            Instr::Bra { target, reconv, .. } => {
                assert_eq!(target, 1);
                assert_eq!(reconv, 4);
            }
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn for_loop_guards_zero_trip() {
        let mut b = ProgramBuilder::new("t");
        let i = b.reg();
        let acc = b.reg();
        let p = b.pred();
        b.mov(acc, Src::Imm(0));
        b.for_loop(i, Src::Imm(5), Src::Imm(5), p, |b, i| {
            b.iadd(acc, acc, Src::Reg(i));
        });
        b.exit();
        let prog = b.build().unwrap();
        prog.validate().unwrap();
        // The zero-trip guard must skip past the whole loop: the guarded
        // branch at pc 3 targets the exit.
        match prog.instrs[3] {
            Instr::Bra { guard: Some(_), target, .. } => {
                assert!(target > 3);
            }
            ref other => panic!("{other}"),
        }
    }

    #[test]
    #[should_panic(expected = "unplaced label")]
    fn unplaced_label_panics_at_build() {
        let mut b = ProgramBuilder::new("t");
        let l = b.new_label();
        let l2 = b.new_label();
        b.bra(None, l, l2);
        b.exit();
        let _ = b.build();
    }

    #[test]
    fn reserve_regs_raises_the_floor_only() {
        let mut b = ProgramBuilder::new("t");
        let r = b.reg();
        b.mov(r, Src::Imm(1));
        b.reserve_regs(40);
        b.exit();
        assert_eq!(b.build().unwrap().regs, 40);
        // A body that already uses more is untouched.
        let mut b = ProgramBuilder::new("t");
        let mut last = b.reg();
        for _ in 0..49 {
            last = b.reg();
        }
        b.mov(last, Src::Imm(1));
        b.reserve_regs(40);
        b.exit();
        assert_eq!(b.build().unwrap().regs, 50);
    }

    #[test]
    fn if_then_with_false_expectation_inverts_guard() {
        let mut b = ProgramBuilder::new("t");
        let r = b.reg();
        let p = b.pred();
        b.setp(CmpOp::Eq, Ty::S32, p, Src::Imm(0), Src::Imm(0));
        // Body runs for lanes where p is FALSE → skip branch tests p==true.
        b.if_then(p, false, |b| {
            b.mov(r, Src::Imm(1));
        });
        b.exit();
        let prog = b.build().unwrap();
        match prog.instrs[1] {
            Instr::Bra {
                guard: Some(Guard { expect, .. }),
                ..
            } => assert!(expect, "skip when p is TRUE"),
            ref other => panic!("{other}"),
        }
    }

    #[test]
    fn global_tid_idiom() {
        let mut b = ProgramBuilder::new("t");
        let r = b.reg();
        b.global_tid(r);
        b.exit();
        let prog = b.build().unwrap();
        match prog.instrs[0] {
            Instr::Alu {
                op: AluOp::IMad,
                a: Src::Special(Special::Ctaid),
                b: Src::Special(Special::NTid),
                c: Src::Special(Special::Tid),
                ..
            } => {}
            ref other => panic!("{other}"),
        }
    }
}
