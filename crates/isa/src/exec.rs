//! Pure functional semantics for VPTX operations.
//!
//! These are lane-level scalar functions with no microarchitectural state;
//! the SM model calls them per active lane. Keeping them here (a) lets the
//! workloads be tested functionally without a simulator and (b) guarantees
//! that every scheduler executes *identical* arithmetic, so end-to-end
//! memory-content checks can assert scheduler independence.

use crate::inst::{AluOp, AtomOp, CmpOp, SfuOp, Ty};

#[inline]
fn f(a: u32) -> f32 {
    f32::from_bits(a)
}

#[inline]
fn b(a: f32) -> u32 {
    a.to_bits()
}

/// Evaluate an ALU operation on raw 32-bit lane values.
#[inline]
pub fn eval_alu(op: AluOp, a: u32, bb: u32, c: u32) -> u32 {
    match op {
        AluOp::IAdd => a.wrapping_add(bb),
        AluOp::ISub => a.wrapping_sub(bb),
        AluOp::IMul => a.wrapping_mul(bb),
        AluOp::IMulHi => (((a as i32 as i64) * (bb as i32 as i64)) >> 32) as u32,
        AluOp::IMad => a.wrapping_mul(bb).wrapping_add(c),
        AluOp::IMin => (a as i32).min(bb as i32) as u32,
        AluOp::IMax => (a as i32).max(bb as i32) as u32,
        AluOp::And => a & bb,
        AluOp::Or => a | bb,
        AluOp::Xor => a ^ bb,
        AluOp::Shl => a.wrapping_shl(bb & 31),
        AluOp::Shr => a.wrapping_shr(bb & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(bb & 31)) as u32,
        AluOp::Mov => a,
        AluOp::FAdd => b(f(a) + f(bb)),
        AluOp::FSub => b(f(a) - f(bb)),
        AluOp::FMul => b(f(a) * f(bb)),
        AluOp::FFma => b(f(a).mul_add(f(bb), f(c))),
        AluOp::FMin => b(f(a).min(f(bb))),
        AluOp::FMax => b(f(a).max(f(bb))),
        AluOp::I2F => b(a as i32 as f32),
        AluOp::F2I => f(a) as i32 as u32,
    }
}

/// Evaluate a typed comparison.
#[inline]
pub fn eval_cmp(cmp: CmpOp, ty: Ty, a: u32, bb: u32) -> bool {
    match ty {
        Ty::S32 => {
            let (x, y) = (a as i32, bb as i32);
            match cmp {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
        Ty::U32 => match cmp {
            CmpOp::Eq => a == bb,
            CmpOp::Ne => a != bb,
            CmpOp::Lt => a < bb,
            CmpOp::Le => a <= bb,
            CmpOp::Gt => a > bb,
            CmpOp::Ge => a >= bb,
        },
        Ty::F32 => {
            let (x, y) = (f(a), f(bb));
            match cmp {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
    }
}

/// Evaluate a special-function (transcendental) operation. Hardware SFUs are
/// approximate; exact `f32` math is a faithful stand-in for scheduling
/// purposes (latency is modelled in the SM, not here).
#[inline]
pub fn eval_sfu(op: SfuOp, a: u32) -> u32 {
    let x = f(a);
    let r = match op {
        SfuOp::Rcp => 1.0 / x,
        SfuOp::Rsqrt => 1.0 / x.sqrt(),
        SfuOp::Sqrt => x.sqrt(),
        SfuOp::Sin => x.sin(),
        SfuOp::Cos => x.cos(),
        SfuOp::Exp2 => x.exp2(),
        SfuOp::Log2 => x.log2(),
    };
    b(r)
}

/// Apply an atomic RMW: returns `(new_value, old_value)`.
#[inline]
pub fn eval_atom(op: AtomOp, old: u32, src: u32) -> (u32, u32) {
    let new = match op {
        AtomOp::Add => old.wrapping_add(src),
        AtomOp::Max => (old as i32).max(src as i32) as u32,
        AtomOp::Exch => src,
    };
    (new, old)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops_wrap() {
        assert_eq!(eval_alu(AluOp::IAdd, u32::MAX, 1, 0), 0);
        assert_eq!(eval_alu(AluOp::IMul, 0x8000_0000, 2, 0), 0);
        assert_eq!(eval_alu(AluOp::IMad, 3, 4, 5), 17);
    }

    #[test]
    fn high_multiply_is_signed() {
        // -1 * -1 = 1 → high word 0
        assert_eq!(eval_alu(AluOp::IMulHi, u32::MAX, u32::MAX, 0), 0);
        // 2^20 * 2^20 = 2^40 → high word 2^8
        assert_eq!(eval_alu(AluOp::IMulHi, 1 << 20, 1 << 20, 0), 1 << 8);
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(eval_alu(AluOp::Shl, 1, 33, 0), 2);
        assert_eq!(eval_alu(AluOp::Shr, 0x8000_0000, 31, 0), 1);
        assert_eq!(eval_alu(AluOp::Sra, 0x8000_0000, 31, 0), u32::MAX);
    }

    #[test]
    fn float_ops_roundtrip_bits() {
        let x = 1.5f32.to_bits();
        let y = 2.25f32.to_bits();
        assert_eq!(f32::from_bits(eval_alu(AluOp::FAdd, x, y, 0)), 3.75);
        assert_eq!(f32::from_bits(eval_alu(AluOp::FMul, x, y, 0)), 3.375);
        let fma = eval_alu(AluOp::FFma, x, y, 1.0f32.to_bits());
        assert_eq!(f32::from_bits(fma), 1.5f32.mul_add(2.25, 1.0));
    }

    #[test]
    fn conversions() {
        assert_eq!(f32::from_bits(eval_alu(AluOp::I2F, (-3i32) as u32, 0, 0)), -3.0);
        assert_eq!(eval_alu(AluOp::F2I, 3.9f32.to_bits(), 0, 0), 3);
        assert_eq!(eval_alu(AluOp::F2I, (-3.9f32).to_bits(), 0, 0) as i32, -3);
    }

    #[test]
    fn comparisons_respect_type() {
        // -1 < 1 signed, but 0xFFFFFFFF > 1 unsigned.
        assert!(eval_cmp(CmpOp::Lt, Ty::S32, u32::MAX, 1));
        assert!(!eval_cmp(CmpOp::Lt, Ty::U32, u32::MAX, 1));
        assert!(eval_cmp(CmpOp::Gt, Ty::U32, u32::MAX, 1));
        assert!(eval_cmp(CmpOp::Le, Ty::F32, 1.0f32.to_bits(), 1.0f32.to_bits()));
        // NaN compares false for everything except Ne.
        let nan = f32::NAN.to_bits();
        assert!(!eval_cmp(CmpOp::Eq, Ty::F32, nan, nan));
        assert!(eval_cmp(CmpOp::Ne, Ty::F32, nan, nan));
    }

    #[test]
    fn sfu_matches_libm() {
        let x = 0.7f32;
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Sin, x.to_bits())), x.sin());
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Rcp, 4.0f32.to_bits())), 0.25);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Rsqrt, 4.0f32.to_bits())), 0.5);
    }

    #[test]
    fn atomics_return_old_value() {
        assert_eq!(eval_atom(AtomOp::Add, 10, 5), (15, 10));
        assert_eq!(eval_atom(AtomOp::Max, 10, 5), (10, 10));
        assert_eq!(eval_atom(AtomOp::Max, 5, 10), (10, 5));
        assert_eq!(eval_atom(AtomOp::Exch, 1, 2), (2, 1));
    }
}
