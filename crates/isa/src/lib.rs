//! # pro-isa — VPTX, a SIMT virtual instruction set
//!
//! The PRO paper evaluates warp schedulers on CUDA kernels compiled to PTX and
//! executed by GPGPU-Sim. This crate provides the equivalent substrate for the
//! Rust reproduction: a small, fully executable SIMT ISA ("VPTX") together
//! with
//!
//! * a typed in-memory representation of instructions ([`Instr`], [`AluOp`]),
//! * a [`Program`] container with validation ([`Program::validate`]),
//! * a [`builder::ProgramBuilder`] with structured-control-flow helpers that
//!   emit correct SIMT reconvergence points,
//! * a text [`asm`]sembler for writing kernels by hand,
//! * pure functional semantics for every operation ([`exec`]), used by the
//!   SM model to *really* execute kernels (branches, addresses and divergence
//!   are computed, not sampled),
//! * an independent scalar reference [`interp`]reter used as a differential
//!   oracle against the SIMT simulator, and
//! * the [`Kernel`]/[`LaunchConfig`] types describing a grid launch.
//!
//! Threads are 32-bit register machines; `f32` values travel bit-cast inside
//! `u32` lanes. A warp is [`WARP_SIZE`] = 32 consecutive threads, matching the
//! paper's Fermi configuration.

pub mod asm;
pub mod builder;
pub mod exec;
pub mod inst;
pub mod interp;
pub mod kernel;
pub mod program;

pub use builder::ProgramBuilder;
pub use inst::{AluOp, AtomOp, CmpOp, Instr, MemSpace, Pc, Pred, Reg, SfuOp, Special, Src, Ty};
pub use kernel::{Dim3, Kernel, LaunchConfig};
pub use program::{Program, ProgramError};

/// Number of threads in a warp (CUDA/Fermi fixed at 32).
pub const WARP_SIZE: usize = 32;

/// Convenience alias for a full active mask (all 32 lanes on).
pub const FULL_MASK: u32 = u32::MAX;

/// Classification of an [`Instr`] by the execution pipeline that serves it
/// inside an SM. The SM model owns one pipeline of each kind per scheduler
/// (ALU) or per SM (SFU, MEM) and uses this to route issued instructions;
/// a full pipeline is what the paper calls a *Pipeline stall*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeClass {
    /// Integer/float arithmetic, comparisons, moves: the SP units.
    Alu,
    /// Special function unit: transcendental ops, low initiation rate.
    Sfu,
    /// Load/store unit: global & shared memory and atomics.
    Mem,
    /// Control flow and barriers: resolved at issue, no pipeline occupancy.
    Ctrl,
}
