//! Property-based tests for VPTX functional semantics and the
//! assembler/disassembler pair.

use proptest::prelude::*;
use pro_isa::exec::{eval_alu, eval_atom, eval_cmp};
use pro_isa::{asm, AluOp, AtomOp, CmpOp, Instr, MemSpace, Pred, Program, Reg, Src, Ty};

proptest! {
    #[test]
    fn iadd_commutes(a: u32, b: u32) {
        prop_assert_eq!(eval_alu(AluOp::IAdd, a, b, 0), eval_alu(AluOp::IAdd, b, a, 0));
    }

    #[test]
    fn imad_is_mul_then_add(a: u32, b: u32, c: u32) {
        let mul = eval_alu(AluOp::IMul, a, b, 0);
        let sum = eval_alu(AluOp::IAdd, mul, c, 0);
        prop_assert_eq!(eval_alu(AluOp::IMad, a, b, c), sum);
    }

    #[test]
    fn sub_is_inverse_of_add(a: u32, b: u32) {
        let s = eval_alu(AluOp::IAdd, a, b, 0);
        prop_assert_eq!(eval_alu(AluOp::ISub, s, b, 0), a);
    }

    #[test]
    fn min_max_bracket(a: u32, b: u32) {
        let lo = eval_alu(AluOp::IMin, a, b, 0) as i32;
        let hi = eval_alu(AluOp::IMax, a, b, 0) as i32;
        prop_assert!(lo <= hi);
        prop_assert!(lo == a as i32 || lo == b as i32);
        prop_assert!(hi == a as i32 || hi == b as i32);
    }

    #[test]
    fn shifts_match_native_semantics(a: u32, s in 0u32..64) {
        prop_assert_eq!(eval_alu(AluOp::Shl, a, s, 0), a.wrapping_shl(s & 31));
        prop_assert_eq!(eval_alu(AluOp::Shr, a, s, 0), a.wrapping_shr(s & 31));
        prop_assert_eq!(eval_alu(AluOp::Sra, a, s, 0), ((a as i32).wrapping_shr(s & 31)) as u32);
    }

    #[test]
    fn comparison_trichotomy_signed(a: u32, b: u32) {
        let lt = eval_cmp(CmpOp::Lt, Ty::S32, a, b);
        let eq = eval_cmp(CmpOp::Eq, Ty::S32, a, b);
        let gt = eval_cmp(CmpOp::Gt, Ty::S32, a, b);
        prop_assert_eq!(lt as u8 + eq as u8 + gt as u8, 1);
        prop_assert_eq!(eval_cmp(CmpOp::Le, Ty::S32, a, b), lt || eq);
        prop_assert_eq!(eval_cmp(CmpOp::Ge, Ty::S32, a, b), gt || eq);
        prop_assert_eq!(eval_cmp(CmpOp::Ne, Ty::S32, a, b), !eq);
    }

    #[test]
    fn float_ops_are_ieee(a: f32, b: f32) {
        prop_assume!(a.is_finite() && b.is_finite());
        let add = f32::from_bits(eval_alu(AluOp::FAdd, a.to_bits(), b.to_bits(), 0));
        prop_assert_eq!(add.to_bits(), (a + b).to_bits());
        let mul = f32::from_bits(eval_alu(AluOp::FMul, a.to_bits(), b.to_bits(), 0));
        prop_assert_eq!(mul.to_bits(), (a * b).to_bits());
    }

    #[test]
    fn atom_add_accumulates(init: u32, vals in proptest::collection::vec(any::<u32>(), 0..8)) {
        let mut cur = init;
        let mut expect = init;
        for v in &vals {
            let (new, old) = eval_atom(AtomOp::Add, cur, *v);
            prop_assert_eq!(old, cur);
            cur = new;
            expect = expect.wrapping_add(*v);
        }
        prop_assert_eq!(cur, expect);
    }

    #[test]
    fn atom_exch_returns_previous(seq in proptest::collection::vec(any::<u32>(), 1..8)) {
        let mut cur = 0u32;
        for v in &seq {
            let (new, old) = eval_atom(AtomOp::Exch, cur, *v);
            prop_assert_eq!(old, cur);
            prop_assert_eq!(new, *v);
            cur = new;
        }
    }
}

/// Strategy: a random straight-line instruction (registers within 8 GPRs /
/// 2 preds so programs always validate).
fn arb_instr() -> impl Strategy<Value = Instr> {
    let reg = (0u8..8).prop_map(Reg);
    let src = prop_oneof![
        (0u8..8).prop_map(|r| Src::Reg(Reg(r))),
        any::<u32>().prop_map(Src::Imm),
        (0u8..4).prop_map(Src::Param),
    ];
    prop_oneof![
        (reg.clone(), src.clone(), src.clone()).prop_map(|(d, a, b)| Instr::Alu {
            op: AluOp::IAdd,
            dst: d,
            a,
            b,
            c: Src::Imm(0)
        }),
        (reg.clone(), src.clone(), src.clone(), src.clone()).prop_map(|(d, a, b, c)| {
            Instr::Alu {
                op: AluOp::IMad,
                dst: d,
                a,
                b,
                c,
            }
        }),
        (reg.clone(), src.clone(), src.clone()).prop_map(|(d, a, b)| Instr::SetP {
            cmp: CmpOp::Lt,
            ty: Ty::S32,
            dst: Pred(0),
            a,
            b
        }.pick_dst(d)),
        (reg.clone(), reg.clone(), -64i32..64).prop_map(|(d, a, off)| Instr::Ld {
            space: MemSpace::Global,
            dst: d,
            addr: a,
            offset: off * 4
        }),
        (reg.clone(), reg.clone(), -64i32..64).prop_map(|(s, a, off)| Instr::St {
            space: MemSpace::Shared,
            src: s,
            addr: a,
            offset: off * 4
        }),
        Just(Instr::Nop),
        Just(Instr::Bar { id: 0 }),
    ]
}

/// Helper so SetP above keeps its own dst (the tuple map needed a Reg).
trait PickDst {
    fn pick_dst(self, _r: Reg) -> Instr;
}
impl PickDst for Instr {
    fn pick_dst(self, _r: Reg) -> Instr {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disassemble_assemble_roundtrip(body in proptest::collection::vec(arb_instr(), 0..24)) {
        let mut instrs = body;
        instrs.push(Instr::Exit);
        let p1 = Program::new("roundtrip", instrs, 8, 2, 64).unwrap();
        let text = p1.disassemble();
        let p2 = asm::assemble(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        prop_assert_eq!(p1.instrs, p2.instrs);
        prop_assert_eq!(p1.regs, p2.regs);
        prop_assert_eq!(p1.shared_bytes, p2.shared_bytes);
    }

    #[test]
    fn validation_never_panics(body in proptest::collection::vec(arb_instr(), 0..16),
                               regs in 1u8..16, preds in 1u8..4) {
        let p = Program {
            name: "fuzz".into(),
            instrs: body,
            regs,
            preds,
            shared_bytes: 0,
        };
        let _ = p.validate(); // may be Ok or Err; must not panic
    }
}
