//! Property-based tests for VPTX functional semantics and the
//! assembler/disassembler pair, on the in-repo `pro_core::prop` harness.

use pro_core::prop::{any, check, one_of, vec_of, Config, Just, Strategy, StrategyExt};
use pro_core::{prop_assert, prop_assert_eq, prop_assume};
use pro_isa::exec::{eval_alu, eval_atom, eval_cmp};
use pro_isa::{asm, AluOp, AtomOp, CmpOp, Instr, MemSpace, Pred, Program, Reg, Src, Ty};

#[test]
fn iadd_commutes() {
    check(Config::default(), (any::<u32>(), any::<u32>()), |&(a, b)| {
        prop_assert_eq!(
            eval_alu(AluOp::IAdd, a, b, 0),
            eval_alu(AluOp::IAdd, b, a, 0)
        );
        Ok(())
    });
}

#[test]
fn imad_is_mul_then_add() {
    check(
        Config::default(),
        (any::<u32>(), any::<u32>(), any::<u32>()),
        |&(a, b, c)| {
            let mul = eval_alu(AluOp::IMul, a, b, 0);
            let sum = eval_alu(AluOp::IAdd, mul, c, 0);
            prop_assert_eq!(eval_alu(AluOp::IMad, a, b, c), sum);
            Ok(())
        },
    );
}

#[test]
fn sub_is_inverse_of_add() {
    check(Config::default(), (any::<u32>(), any::<u32>()), |&(a, b)| {
        let s = eval_alu(AluOp::IAdd, a, b, 0);
        prop_assert_eq!(eval_alu(AluOp::ISub, s, b, 0), a);
        Ok(())
    });
}

#[test]
fn min_max_bracket() {
    check(Config::default(), (any::<u32>(), any::<u32>()), |&(a, b)| {
        let lo = eval_alu(AluOp::IMin, a, b, 0) as i32;
        let hi = eval_alu(AluOp::IMax, a, b, 0) as i32;
        prop_assert!(lo <= hi);
        prop_assert!(lo == a as i32 || lo == b as i32);
        prop_assert!(hi == a as i32 || hi == b as i32);
        Ok(())
    });
}

#[test]
fn shifts_match_native_semantics() {
    check(Config::default(), (any::<u32>(), 0u32..64), |&(a, s)| {
        prop_assert_eq!(eval_alu(AluOp::Shl, a, s, 0), a.wrapping_shl(s & 31));
        prop_assert_eq!(eval_alu(AluOp::Shr, a, s, 0), a.wrapping_shr(s & 31));
        prop_assert_eq!(
            eval_alu(AluOp::Sra, a, s, 0),
            ((a as i32).wrapping_shr(s & 31)) as u32
        );
        Ok(())
    });
}

#[test]
fn comparison_trichotomy_signed() {
    check(Config::default(), (any::<u32>(), any::<u32>()), |&(a, b)| {
        let lt = eval_cmp(CmpOp::Lt, Ty::S32, a, b);
        let eq = eval_cmp(CmpOp::Eq, Ty::S32, a, b);
        let gt = eval_cmp(CmpOp::Gt, Ty::S32, a, b);
        prop_assert_eq!(lt as u8 + eq as u8 + gt as u8, 1);
        prop_assert_eq!(eval_cmp(CmpOp::Le, Ty::S32, a, b), lt || eq);
        prop_assert_eq!(eval_cmp(CmpOp::Ge, Ty::S32, a, b), gt || eq);
        prop_assert_eq!(eval_cmp(CmpOp::Ne, Ty::S32, a, b), !eq);
        Ok(())
    });
}

#[test]
fn float_ops_are_ieee() {
    check(Config::default(), (any::<f32>(), any::<f32>()), |&(a, b)| {
        prop_assume!(a.is_finite() && b.is_finite());
        let add = f32::from_bits(eval_alu(AluOp::FAdd, a.to_bits(), b.to_bits(), 0));
        prop_assert_eq!(add.to_bits(), (a + b).to_bits());
        let mul = f32::from_bits(eval_alu(AluOp::FMul, a.to_bits(), b.to_bits(), 0));
        prop_assert_eq!(mul.to_bits(), (a * b).to_bits());
        Ok(())
    });
}

#[test]
fn atom_add_accumulates() {
    check(
        Config::default(),
        (any::<u32>(), vec_of(any::<u32>(), 0..8)),
        |(init, vals)| {
            let mut cur = *init;
            let mut expect = *init;
            for v in vals {
                let (new, old) = eval_atom(AtomOp::Add, cur, *v);
                prop_assert_eq!(old, cur);
                cur = new;
                expect = expect.wrapping_add(*v);
            }
            prop_assert_eq!(cur, expect);
            Ok(())
        },
    );
}

#[test]
fn atom_exch_returns_previous() {
    check(
        Config::default(),
        vec_of(any::<u32>(), 1..8),
        |seq: &Vec<u32>| {
            let mut cur = 0u32;
            for v in seq {
                let (new, old) = eval_atom(AtomOp::Exch, cur, *v);
                prop_assert_eq!(old, cur);
                prop_assert_eq!(new, *v);
                cur = new;
            }
            Ok(())
        },
    );
}

/// Strategy: a random source operand within 8 GPRs / 4 params.
fn arb_src() -> impl Strategy<Value = Src> {
    one_of(vec![
        (0u8..8).prop_map(|r| Src::Reg(Reg(r))).boxed(),
        any::<u32>().prop_map(Src::Imm).boxed(),
        (0u8..4).prop_map(Src::Param).boxed(),
    ])
}

/// Strategy: a random straight-line instruction (registers within 8 GPRs /
/// 2 preds so programs always validate).
fn arb_instr() -> impl Strategy<Value = Instr> {
    let reg = || (0u8..8).prop_map(Reg);
    one_of(vec![
        (reg(), arb_src(), arb_src())
            .prop_map(|(d, a, b)| Instr::Alu {
                op: AluOp::IAdd,
                dst: d,
                a,
                b,
                c: Src::Imm(0),
            })
            .boxed(),
        (reg(), arb_src(), arb_src(), arb_src())
            .prop_map(|(d, a, b, c)| Instr::Alu {
                op: AluOp::IMad,
                dst: d,
                a,
                b,
                c,
            })
            .boxed(),
        (arb_src(), arb_src())
            .prop_map(|(a, b)| Instr::SetP {
                cmp: CmpOp::Lt,
                ty: Ty::S32,
                dst: Pred(0),
                a,
                b,
            })
            .boxed(),
        (reg(), reg(), -64i32..64)
            .prop_map(|(d, a, off)| Instr::Ld {
                space: MemSpace::Global,
                dst: d,
                addr: a,
                offset: off * 4,
            })
            .boxed(),
        (reg(), reg(), -64i32..64)
            .prop_map(|(s, a, off)| Instr::St {
                space: MemSpace::Shared,
                src: s,
                addr: a,
                offset: off * 4,
            })
            .boxed(),
        Just(Instr::Nop).boxed(),
        Just(Instr::Bar { id: 0 }).boxed(),
    ])
}

#[test]
fn disassemble_assemble_roundtrip() {
    check(
        Config::with_cases(64),
        vec_of(arb_instr(), 0..24),
        |body: &Vec<Instr>| {
            let mut instrs = body.clone();
            instrs.push(Instr::Exit);
            let p1 = Program::new("roundtrip", instrs, 8, 2, 64).unwrap();
            let text = p1.disassemble();
            let p2 = asm::assemble(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            prop_assert_eq!(&p1.instrs, &p2.instrs);
            prop_assert_eq!(p1.regs, p2.regs);
            prop_assert_eq!(p1.shared_bytes, p2.shared_bytes);
            Ok(())
        },
    );
}

#[test]
fn validation_never_panics() {
    check(
        Config::with_cases(64),
        (vec_of(arb_instr(), 0..16), 1u8..16, 1u8..4),
        |(body, regs, preds)| {
            let p = Program {
                name: "fuzz".into(),
                instrs: body.clone(),
                regs: *regs,
                preds: *preds,
                shared_bytes: 0,
            };
            let _ = p.validate(); // may be Ok or Err; must not panic
            Ok(())
        },
    );
}
